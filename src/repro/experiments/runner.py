"""Generic experiment executor: selection → parallel map → assemble.

The runner knows nothing about individual figures or tables any more —
it resolves a selection against :mod:`repro.experiments.registry`, fans
the chosen experiments out over worker processes, and assembles the two
output artifacts:

* ``EXPERIMENTS.md`` — the rendered paper-vs-measured report, and
* ``results/<name>.json`` — one structured, machine-readable
  :class:`~repro.experiments.results.SectionResult` document per
  section (the regression-gateable trajectory).

The canonical entry point is ``python -m repro run`` (see
:mod:`repro.cli`).  ``python -m repro.experiments.runner`` survives as a
deprecated shim with its historical flags::

    python -m repro.experiments.runner [--full] [--jobs N]
                                       [--output EXPERIMENTS.md]
                                       [--corpus DIR | --no-corpus]

Trace-consuming sections (Figures 4/10/11, the trace cross-checks and
the multi-core study) resolve their workloads through the
content-addressed corpus store carried by the
:class:`~repro.experiments.context.RunContext`: the first invocation
records, every later invocation replays pure corpus hits.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import traceback as traceback_module

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.corpus.manifest import ManifestLockTimeout
from repro.experiments.context import RunContext
from repro.experiments.registry import Experiment, select
from repro.experiments.results import (
    SectionFailure,
    SectionOutcome,
    SectionResult,
)
from repro.reliability.faults import trip_section_fault
from repro.telemetry.profiler import profiled_section
from repro.telemetry.runtime import active as telemetry_active
from repro.telemetry.runtime import flush as telemetry_flush
from repro.telemetry.runtime import span as telemetry_span

#: Schema tag of ``results/index.json`` (see docs/API.md).
INDEX_SCHEMA = "repro-run-index/v1"

#: Default directory for the per-section JSON results.
DEFAULT_RESULTS_DIR = "results"

#: Total tries per section: one run plus one bounded retry, granted
#: only to infrastructure-class failures (a worker crash, a lock
#: timeout, an I/O error).  A section whose own code raises is
#: deterministic — retrying it would just fail again.
MAX_ATTEMPTS = 2

#: Failure classes that earn the retry.  ``BrokenProcessPool`` is the
#: killed/OOMed worker; ``ManifestLockTimeout`` and ``OSError`` are the
#: environment misbehaving underneath a correct section.
INFRASTRUCTURE_ERRORS = (OSError, ManifestLockTimeout, BrokenProcessPool)


def _timed_run(name: str, run, ctx: RunContext) -> tuple[SectionResult, float]:
    """Run one section under its telemetry span; returns (result, seconds).

    The wall-clock measurement always happens (it feeds the index's
    ``timing`` stanza when telemetry is on); the span, the optional
    cProfile capture and the flush are no-ops without an active sink.
    The flush matters in pool workers, which exit without ``atexit``.
    """
    started = time.perf_counter()
    with telemetry_span(f"section/{name}", profile=ctx.profile):
        with profiled_section(name, enabled=ctx.profile_sections):
            result = run()
    seconds = time.perf_counter() - started
    telemetry_flush()
    return result, seconds


def _run_by_name(task: tuple[str, RunContext]) -> tuple[SectionResult, float]:
    """Process-pool entry point: run one registered experiment by name."""
    name, ctx = task
    from repro.experiments.registry import get

    trip_section_fault(name, ctx.faults)
    return _timed_run(name, lambda: get(name).run(ctx), ctx)


@dataclass
class RunReport:
    """Everything one :func:`execute_report` invocation observed.

    ``outcomes`` holds one entry per selected experiment in report
    order — a :class:`SectionResult` or, for sections that exhausted
    their attempts, a :class:`SectionFailure`.  ``incidents`` is the
    attempt ledger: every failed attempt, including the ones a retry
    later recovered (so a run that *looks* clean but needed a retry is
    still diagnosable from ``results/index.json``).
    """

    outcomes: list[SectionOutcome] = field(default_factory=list)
    incidents: list[dict] = field(default_factory=list)
    #: Per-section wall-clock seconds of the successful attempt (absent
    #: for sections that never completed).  Observability only — the
    #: deterministic artifacts never include these numbers.
    timing: dict[str, float] = field(default_factory=dict)

    @property
    def failures(self) -> list[SectionFailure]:
        return [o for o in self.outcomes if isinstance(o, SectionFailure)]

    @property
    def ok(self) -> bool:
        return not self.failures


def _classify(error: BaseException) -> tuple[str, bool]:
    """(failure kind, earns-a-retry) for one caught section error."""
    if isinstance(error, BrokenProcessPool):
        return "worker-crash", True
    if isinstance(error, INFRASTRUCTURE_ERRORS):
        return "infrastructure", True
    return "exception", False


def _format_error(error: BaseException) -> tuple[str, str]:
    """(one-line message, full traceback) for a section failure record."""
    message = f"{type(error).__name__}: {error}"
    trace = "".join(
        traceback_module.format_exception(
            type(error), error, error.__traceback__
        )
    )
    return message, trace


def _attempt_round(
    pending: list[Experiment], ctx: RunContext
) -> tuple[dict[str, SectionResult], dict[str, BaseException]]:
    """Try every pending section once; returns (results, errors) by name,
    where each result is a ``(SectionResult, wall seconds)`` pair.

    With ``jobs > 1`` the sections fan out over a fresh process pool —
    fresh so that a pool broken by a crashed worker in an earlier round
    cannot poison this one.  A broken pool surfaces as a
    ``BrokenProcessPool`` on every section that did not complete; the
    caller's retry loop re-runs those, so one killed worker costs one
    bounded re-execution, not the run.
    """
    results: dict[str, tuple[SectionResult, float]] = {}
    errors: dict[str, BaseException] = {}
    if ctx.jobs > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=ctx.jobs) as pool:
            futures = {
                experiment.name: pool.submit(
                    _run_by_name, (experiment.name, ctx)
                )
                for experiment in pending
            }
            for name, future in futures.items():
                try:
                    results[name] = future.result()
                except Exception as error:
                    errors[name] = error
        return results, errors
    for experiment in pending:
        try:
            trip_section_fault(experiment.name, ctx.faults)
            results[experiment.name] = _timed_run(
                experiment.name, lambda: experiment.run(ctx), ctx
            )
        except Exception as error:
            errors[experiment.name] = error
    return results, errors


def execute_report(
    experiments: list[Experiment], ctx: RunContext
) -> RunReport:
    """Run the selected experiments with per-section fault isolation.

    A section that raises — or whose worker process dies — becomes a
    structured :class:`SectionFailure` instead of aborting the run;
    infrastructure-class failures get one bounded retry first.  Report
    order is preserved regardless of which sections failed or retried.
    """
    by_name = {experiment.name: experiment for experiment in experiments}
    attempts = {name: 0 for name in by_name}
    outcomes: dict[str, SectionOutcome] = {}
    incidents: list[dict] = []
    timing: dict[str, float] = {}
    tel = telemetry_active()
    pending = list(experiments)
    while pending:
        results, errors = _attempt_round(pending, ctx)
        retry: list[Experiment] = []
        for experiment in pending:
            name = experiment.name
            attempts[name] += 1
            if name in results:
                outcomes[name], timing[name] = results[name]
                continue
            error = errors[name]
            kind, retryable = _classify(error)
            message, trace = _format_error(error)
            will_retry = retryable and attempts[name] < MAX_ATTEMPTS
            incidents.append(
                {
                    "section": name,
                    "kind": kind,
                    "error": message,
                    "attempt": attempts[name],
                    "retried": will_retry,
                }
            )
            if tel is not None:
                tel.inc("runner_section_failures_total", kind=kind)
                if will_retry:
                    tel.inc("runner_retries_total")
            if will_retry:
                retry.append(experiment)
                continue
            outcomes[name] = SectionFailure(
                name=name,
                title=experiment.title,
                error=message,
                kind=kind,
                attempts=attempts[name],
                traceback=trace,
                tags=tuple(sorted(experiment.tags)),
            )
        pending = retry
    if tel is not None:
        tel.inc("runner_sections_total", len(experiments))
        tel.flush()
    return RunReport(
        outcomes=[outcomes[experiment.name] for experiment in experiments],
        incidents=incidents,
        timing=timing,
    )


def execute(
    experiments: list[Experiment], ctx: RunContext
) -> list[SectionOutcome]:
    """Run the selected experiments, preserving report order.

    ``ctx.jobs > 1`` fans the independent experiments out over worker
    processes.  The corpus store's manifest updates are lock-serialised,
    so parallel sections building overlapping corpora are safe.  Failed
    sections come back as :class:`SectionFailure` values (see
    :func:`execute_report` for the incident ledger).
    """
    return execute_report(experiments, ctx).outcomes


_PREAMBLE = """# EXPERIMENTS — paper vs. measured

Regenerated by ``python -m repro.experiments.runner``.  Absolute numbers
come from a functional Python simulator with an analytical timing model
(see DESIGN.md substitutions); the reproduction target is the *shape* of
each result — orderings, rough factors and crossovers.  Known divergences
are listed at the end.

"""

_DIVERGENCES = """
## Known divergences from the paper

* **Figure 10** averages ~1.6 % here vs 0.83 % in the paper: the
  analytical in-order stall model pays relatively more L2/L3 cycles than
  the validated OoO ZSim core.  Ordering (compute-bound lowest,
  cache-resident-but-L2-missing highest) is preserved.
* **Figure 4** starts near 4.5 % at 1 B vs the paper's 3.0 %: in our
  layout engine one inserted byte frequently costs a full alignment slot
  (up to 8 B) for the following field, so small paddings are relatively
  more expensive.  The curve remains monotonic and ends near the paper's
  7.6 %.
* **Figure 11** opportunistic+CFORM averages ~6 % vs 7.9 %; the
  per-benchmark outliers (gobmk, perlbench, h264ref) match.
* **Table 2/7** delay/area/power are structural estimates calibrated to
  the paper's baseline row only; they land within a few percent of the
  paper's overhead percentages, and all orderings (spill ≫ fill, 4B
  slowest variant, 8B largest metadata) are structural, not fitted.
"""


def write_markdown(sections: dict[str, str], path: str) -> None:
    """Assemble {section title: rendered body} into the report file."""
    parts = [_PREAMBLE]
    for title, body in sections.items():
        parts.append(f"## {title}\n\n```text\n{body}\n```\n")
    parts.append(_DIVERGENCES)
    with open(path, "w") as handle:
        handle.write("\n".join(parts))


def write_report(results: list[SectionResult], path: str) -> None:
    """Write the rendered EXPERIMENTS.md for a list of section results."""
    write_markdown(
        {result.title: result.markdown for result in results}, path
    )


def write_results(
    results: list[SectionOutcome],
    directory: str = DEFAULT_RESULTS_DIR,
    profile: str = "quick",
    incidents: list[dict] | None = None,
    corpus_events: list[dict] | None = None,
    check: dict | None = None,
    timing: dict[str, float] | None = None,
    telemetry: str | None = None,
) -> list[str]:
    """Persist one ``<name>.json`` per section plus an ``index.json``.

    The documents are deterministic (no timestamps), so two identical
    runs produce byte-identical files — the property the ``--check``
    regression gate (:mod:`repro.experiments.check`) relies on.  Failed
    sections write a failure document (``repro-section-failure/v1``);
    the index records every section's status plus the run's attempt
    ledger (``incidents``) and any corpus self-heal events
    (``corpus_events``), so one file answers "did this run see any
    fault?" — all three are empty lists on a clean run.  When the run
    was gated, ``check`` embeds the gate's verdict and every drifted
    metric under the index's ``"check"`` key.

    ``timing`` (per-section wall seconds) and ``telemetry`` (the sink
    directory) populate the index's observability stanza; both are
    ``null`` unless the run opted into telemetry, which keeps the
    default index byte-identical across runs — timing keys are also on
    the check gate's ignore list, so a gated telemetry run never fails
    on wall-clock drift.
    """
    os.makedirs(directory, exist_ok=True)
    paths: list[str] = []
    for result in results:
        path = os.path.join(directory, f"{result.name}.json")
        with open(path, "w") as handle:
            handle.write(result.to_json())
            handle.write("\n")
        paths.append(path)
    index = {
        "schema": INDEX_SCHEMA,
        "profile": profile,
        "sections": [
            {
                "name": result.name,
                "title": result.title,
                "tags": list(result.tags),
                "status": (
                    "failed" if isinstance(result, SectionFailure) else "ok"
                ),
            }
            for result in results
        ],
        "failures": [
            {
                "name": result.name,
                "kind": result.kind,
                "error": result.error,
                "attempts": result.attempts,
            }
            for result in results
            if isinstance(result, SectionFailure)
        ],
        "incidents": list(incidents or ()),
        "corpus_events": list(corpus_events or ()),
        # Observability stanza: null unless the run opted into telemetry
        # (default runs must stay byte-identical across invocations).
        "timing": (
            {name: round(seconds, 6) for name, seconds in sorted(timing.items())}
            if timing
            else None
        ),
        "telemetry": telemetry,
    }
    if check is not None:
        index["check"] = check
    index_path = os.path.join(directory, "index.json")
    with open(index_path, "w") as handle:
        json.dump(index, handle, indent=2)
        handle.write("\n")
    paths.append(index_path)
    return paths


def run_all(
    full: bool = False, jobs: int = 1, corpus_root: str | None = None
) -> dict[str, str]:
    """Legacy API: run everything, return {section title: rendered body}.

    Kept for callers of the pre-registry runner; new code should use
    :func:`execute` with an explicit selection and
    :class:`~repro.experiments.context.RunContext`.  ``corpus_root=None``
    keeps the trace-consuming sections fully live/ephemeral, matching
    the historical behaviour.
    """
    ctx = RunContext(
        profile="full" if full else "quick",
        instructions=200_000 if full else 80_000,
        seeds=(0, 1, 2) if full else (0,),
        corpus_root=corpus_root,
        jobs=jobs,
    )
    results = execute(select(), ctx)
    return {result.title: result.markdown for result in results}


def main(argv: list[str] | None = None) -> int:
    """Deprecated entry point; ``python -m repro run`` is the successor."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="long traces, 3 seeds")
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for the experiment sections (default: 1)",
    )
    parser.add_argument("--output", default="EXPERIMENTS.md")
    parser.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="corpus store root for the trace-consuming sections "
        "(default: $REPRO_CORPUS_DIR or ./.repro-corpus)",
    )
    parser.add_argument(
        "--no-corpus", action="store_true",
        help="synthesise every workload live instead of using the corpus",
    )
    arguments = parser.parse_args(argv)
    print(
        "note: python -m repro.experiments.runner is deprecated; "
        "use `python -m repro run`",
        file=sys.stderr,
    )
    ctx = RunContext.create(
        profile="full" if arguments.full else "quick",
        corpus=arguments.corpus,
        no_corpus=arguments.no_corpus,
        # The historical runner ran sequentially for --jobs <= 1; the
        # shim preserves that instead of rejecting 0.
        jobs=max(1, arguments.jobs),
    )
    started = time.time()
    report = execute_report(select(), ctx)
    write_report(report.outcomes, arguments.output)
    if ctx.corpus_root is not None:
        print(f"corpus: {ctx.corpus_root}")
    print(f"wrote {arguments.output} in {time.time() - started:.0f}s")
    for failure in report.failures:
        print(
            f"FAILED {failure.name} ({failure.kind}, "
            f"{failure.attempts} attempt(s)): {failure.error}",
            file=sys.stderr,
        )
    return 1 if report.failures else 0


if __name__ == "__main__":
    sys.exit(main())
