"""Run every experiment and regenerate EXPERIMENTS.md.

Usage::

    python -m repro.experiments.runner [--full] [--jobs N]
                                       [--output EXPERIMENTS.md]
                                       [--corpus DIR | --no-corpus]

``--full`` uses longer traces and three layout seeds (minutes); the
default quick mode finishes in well under a minute.  ``--jobs N`` runs
the experiment sections in ``N`` worker processes — the sections are
independent simulations, so ``--full --jobs 4`` recovers most of the
full mode's wall-clock cost.

Trace-consuming sections (Figures 4/10/11, the trace cross-checks and
the multi-core study) resolve their workloads through the
content-addressed corpus store by default (``--corpus DIR``; default
``$REPRO_CORPUS_DIR`` or ``./.repro-corpus``): the first invocation
records, every later invocation replays pure corpus hits — zero trace
re-recording.  ``--no-corpus`` restores fully live synthesis.
"""

from __future__ import annotations

import argparse
import time
from concurrent.futures import ProcessPoolExecutor

from repro.corpus.store import CorpusStore, default_store
from repro.experiments import (
    fig03_struct_density,
    fig04_padding_sweep,
    fig10_extra_latency,
    fig11_policies,
    fig12_intelligent,
    mc_contention,
    sec7_derandomization,
    tables,
    trace_checks,
)


def _section_fig03(instructions, seeds, store) -> str:
    return fig03_struct_density.render(fig03_struct_density.run())


def _section_fig04(instructions, seeds, store) -> str:
    return fig04_padding_sweep.render(
        fig04_padding_sweep.run(instructions=instructions, store=store)
    )


def _section_table1(instructions, seeds, store) -> str:
    return tables.render_table1()


def _section_table2(instructions, seeds, store) -> str:
    return tables.render_table2()


def _section_table3(instructions, seeds, store) -> str:
    return tables.render_table3()


def _section_fig10(instructions, seeds, store) -> str:
    return fig10_extra_latency.render(
        fig10_extra_latency.run(instructions=instructions, store=store)
    )


def _section_fig11(instructions, seeds, store) -> str:
    return fig11_policies.render(
        fig11_policies.run(
            instructions=instructions, binary_seeds=seeds, store=store
        )
    )


def _section_fig12(instructions, seeds, store) -> str:
    return fig12_intelligent.render(
        fig12_intelligent.run(instructions=instructions, binary_seeds=seeds)
    )


def _section_tables456(instructions, seeds, store) -> str:
    return tables.render_tables456()


def _section_sec7(instructions, seeds, store) -> str:
    return sec7_derandomization.render(sec7_derandomization.run())


def _section_table7(instructions, seeds, store) -> str:
    return tables.render_table7()


def _section_traces(instructions, seeds, store) -> str:
    # A fraction of the figure trace length keeps the recorded files and
    # this section's runtime small; the invariant is length-independent.
    return trace_checks.render(
        trace_checks.run(instructions=instructions // 4, store=store)
    )


def _section_multicore(instructions, seeds, store) -> str:
    # Four per-core traces: a tenth of the figure length each keeps the
    # recorded corpus and replay cost proportionate to the other sections.
    return mc_contention.render(
        mc_contention.run(instructions=instructions // 10, store=store)
    )


#: (title, worker) in report order.  Workers are module-level functions so
#: the process-parallel mode can pickle them.
_SECTIONS: tuple[tuple[str, object], ...] = (
    ("Figure 3 — struct density census", _section_fig03),
    ("Figure 4 — fixed padding sweep", _section_fig04),
    ("Table 1 — CFORM K-map", _section_table1),
    ("Table 2 — VLSI costs", _section_table2),
    ("Table 3 — simulated system", _section_table3),
    ("Figure 10 — +1-cycle L2/L3 latency", _section_fig10),
    ("Figure 11 — opportunistic & full policies", _section_fig11),
    ("Figure 12 — intelligent policy", _section_fig12),
    ("Tables 4/5/6 — related-work comparison", _section_tables456),
    ("Section 7.3 — derandomization", _section_sec7),
    ("Table 7 — L1 variants", _section_table7),
    ("Trace engine — figures from recorded traces", _section_traces),
    ("Multi-core — shared-L3 contention under extra latency", _section_multicore),
)


def _run_section(task: tuple[int, int, tuple[int, ...], str | None]) -> str:
    """Process-pool entry point: run one section by index."""
    index, instructions, seeds, corpus_root = task
    _, worker = _SECTIONS[index]
    store = CorpusStore(corpus_root) if corpus_root is not None else None
    return worker(instructions, seeds, store)


def run_all(
    full: bool = False, jobs: int = 1, corpus_root: str | None = None
) -> dict[str, str]:
    """Run each experiment; returns {section title: rendered body}.

    ``jobs > 1`` fans the independent sections out over worker processes
    while preserving report order.  ``corpus_root`` points the
    trace-consuming sections at a persistent corpus store (they record
    on first use and replay thereafter; the store's manifest updates are
    lock-serialised, so parallel sections building overlapping corpora
    are safe); ``None`` keeps them fully live/ephemeral.
    """
    instructions = 200_000 if full else 80_000
    seeds = (0, 1, 2) if full else (0,)
    tasks = [
        (index, instructions, seeds, corpus_root)
        for index in range(len(_SECTIONS))
    ]
    if jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            bodies = list(pool.map(_run_section, tasks))
    else:
        bodies = [_run_section(task) for task in tasks]
    return {title: body for (title, _), body in zip(_SECTIONS, bodies)}


_PREAMBLE = """# EXPERIMENTS — paper vs. measured

Regenerated by ``python -m repro.experiments.runner``.  Absolute numbers
come from a functional Python simulator with an analytical timing model
(see DESIGN.md substitutions); the reproduction target is the *shape* of
each result — orderings, rough factors and crossovers.  Known divergences
are listed at the end.

"""

_DIVERGENCES = """
## Known divergences from the paper

* **Figure 10** averages ~1.6 % here vs 0.83 % in the paper: the
  analytical in-order stall model pays relatively more L2/L3 cycles than
  the validated OoO ZSim core.  Ordering (compute-bound lowest,
  cache-resident-but-L2-missing highest) is preserved.
* **Figure 4** starts near 4.5 % at 1 B vs the paper's 3.0 %: in our
  layout engine one inserted byte frequently costs a full alignment slot
  (up to 8 B) for the following field, so small paddings are relatively
  more expensive.  The curve remains monotonic and ends near the paper's
  7.6 %.
* **Figure 11** opportunistic+CFORM averages ~6 % vs 7.9 %; the
  per-benchmark outliers (gobmk, perlbench, h264ref) match.
* **Table 2/7** delay/area/power are structural estimates calibrated to
  the paper's baseline row only; they land within a few percent of the
  paper's overhead percentages, and all orderings (spill ≫ fill, 4B
  slowest variant, 8B largest metadata) are structural, not fitted.
"""


def write_markdown(sections: dict[str, str], path: str) -> None:
    parts = [_PREAMBLE]
    for title, body in sections.items():
        parts.append(f"## {title}\n\n```text\n{body}\n```\n")
    parts.append(_DIVERGENCES)
    with open(path, "w") as handle:
        handle.write("\n".join(parts))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="long traces, 3 seeds")
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for the experiment sections (default: 1)",
    )
    parser.add_argument("--output", default="EXPERIMENTS.md")
    parser.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="corpus store root for the trace-consuming sections "
        "(default: $REPRO_CORPUS_DIR or ./.repro-corpus)",
    )
    parser.add_argument(
        "--no-corpus", action="store_true",
        help="synthesise every workload live instead of using the corpus",
    )
    arguments = parser.parse_args()
    if arguments.no_corpus:
        corpus_root = None
    else:
        corpus_root = arguments.corpus or default_store().root
    started = time.time()
    sections = run_all(
        full=arguments.full, jobs=arguments.jobs, corpus_root=corpus_root
    )
    write_markdown(sections, arguments.output)
    if corpus_root is not None:
        print(f"corpus: {corpus_root}")
    print(f"wrote {arguments.output} in {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()
