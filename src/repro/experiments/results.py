"""Structured experiment results: JSON data + rendered markdown.

Every registered experiment returns a :class:`SectionResult` — the
machine-readable side (``data``, persisted as ``results/<name>.json``)
and the human-readable side (``markdown``, assembled into
``EXPERIMENTS.md``) of the same measurement.  Keeping both in one value
means the runner can emit a regression-gateable JSON trajectory without
a second execution, and a rendered report without a separate renderer
pass.

``data`` is normalised to the JSON object model at construction time
(via an encode/decode round-trip), so ``SectionResult`` values survive
serialisation *exactly*: ``SectionResult.from_dict(r.to_dict()) == r``
holds even when the experiment handed us dataclass-derived dicts with
``int`` keys or tuples.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any

#: Schema tag written into every results JSON document.
RESULT_SCHEMA = "repro-section-result/v1"

#: Schema tag of a failed section's JSON document.
FAILURE_SCHEMA = "repro-section-failure/v1"


def jsonable(value: Any) -> Any:
    """Normalise ``value`` into the plain JSON object model.

    Dataclasses become dicts, tuples become lists, non-string mapping
    keys become strings — exactly what a ``json.dumps``/``loads``
    round-trip would produce, so normalised values compare equal after
    serialisation.
    """
    def encode(obj: Any) -> Any:
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            return dataclasses.asdict(obj)
        if isinstance(obj, (set, frozenset)):
            return sorted(obj)
        raise TypeError(
            f"experiment data contains non-JSON value of type "
            f"{type(obj).__name__}: {obj!r}"
        )

    return json.loads(json.dumps(value, default=encode, sort_keys=False))


@dataclass(frozen=True)
class SectionResult:
    """One experiment's structured outcome.

    ``name``/``title``/``tags`` echo the registry entry that produced
    the result, so a results file is self-describing; ``data`` is the
    JSON-normalised measurement payload and ``markdown`` the rendered
    report body.
    """

    name: str
    title: str
    data: Any
    markdown: str
    tags: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "data", jsonable(self.data))
        object.__setattr__(self, "tags", tuple(self.tags))

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": RESULT_SCHEMA,
            "name": self.name,
            "title": self.title,
            "tags": list(self.tags),
            "data": self.data,
            "markdown": self.markdown,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "SectionResult":
        schema = document.get("schema", RESULT_SCHEMA)
        if schema != RESULT_SCHEMA:
            raise ValueError(
                f"unsupported results schema {schema!r} "
                f"(this build reads {RESULT_SCHEMA!r})"
            )
        return cls(
            name=document["name"],
            title=document["title"],
            data=document["data"],
            markdown=document["markdown"],
            tags=tuple(document.get("tags", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "SectionResult":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class SectionFailure:
    """One experiment section that did not produce a result.

    The fault-tolerant runner records *why* instead of aborting the
    whole run: ``kind`` classifies the failure (``"exception"`` — the
    section's own code raised; ``"worker-crash"`` — the worker process
    died without unwinding; ``"infrastructure"`` — an environment
    error such as a lock timeout or I/O failure that survived the
    bounded retry), ``attempts`` counts how many times the section was
    tried, and ``error``/``traceback`` carry the evidence.  The shape
    mirrors :class:`SectionResult` (``name``/``title``/``tags``/
    ``markdown``/``to_dict``) so report assembly and the results writer
    handle both uniformly.
    """

    name: str
    title: str
    error: str
    kind: str = "exception"
    attempts: int = 1
    traceback: str = ""
    tags: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "tags", tuple(self.tags))

    @property
    def markdown(self) -> str:
        """The failed section's report body (rendered in EXPERIMENTS.md)."""
        body = (
            f"SECTION FAILED ({self.kind}, {self.attempts} attempt(s))\n\n"
            f"{self.error}"
        )
        if self.traceback:
            body += f"\n\n{self.traceback.rstrip()}"
        return body

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": FAILURE_SCHEMA,
            "name": self.name,
            "title": self.title,
            "tags": list(self.tags),
            "error": self.error,
            "kind": self.kind,
            "attempts": self.attempts,
            "traceback": self.traceback,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "SectionFailure":
        schema = document.get("schema", FAILURE_SCHEMA)
        if schema != FAILURE_SCHEMA:
            raise ValueError(
                f"unsupported failure schema {schema!r} "
                f"(this build reads {FAILURE_SCHEMA!r})"
            )
        return cls(
            name=document["name"],
            title=document["title"],
            error=document["error"],
            kind=document.get("kind", "exception"),
            attempts=document.get("attempts", 1),
            traceback=document.get("traceback", ""),
            tags=tuple(document.get("tags", ())),
        )


#: Either outcome of one section run.
SectionOutcome = SectionResult | SectionFailure
