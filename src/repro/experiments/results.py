"""Structured experiment results: JSON data + rendered markdown.

Every registered experiment returns a :class:`SectionResult` — the
machine-readable side (``data``, persisted as ``results/<name>.json``)
and the human-readable side (``markdown``, assembled into
``EXPERIMENTS.md``) of the same measurement.  Keeping both in one value
means the runner can emit a regression-gateable JSON trajectory without
a second execution, and a rendered report without a separate renderer
pass.

``data`` is normalised to the JSON object model at construction time
(via an encode/decode round-trip), so ``SectionResult`` values survive
serialisation *exactly*: ``SectionResult.from_dict(r.to_dict()) == r``
holds even when the experiment handed us dataclass-derived dicts with
``int`` keys or tuples.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any

#: Schema tag written into every results JSON document.
RESULT_SCHEMA = "repro-section-result/v1"


def jsonable(value: Any) -> Any:
    """Normalise ``value`` into the plain JSON object model.

    Dataclasses become dicts, tuples become lists, non-string mapping
    keys become strings — exactly what a ``json.dumps``/``loads``
    round-trip would produce, so normalised values compare equal after
    serialisation.
    """
    def encode(obj: Any) -> Any:
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            return dataclasses.asdict(obj)
        if isinstance(obj, (set, frozenset)):
            return sorted(obj)
        raise TypeError(
            f"experiment data contains non-JSON value of type "
            f"{type(obj).__name__}: {obj!r}"
        )

    return json.loads(json.dumps(value, default=encode, sort_keys=False))


@dataclass(frozen=True)
class SectionResult:
    """One experiment's structured outcome.

    ``name``/``title``/``tags`` echo the registry entry that produced
    the result, so a results file is self-describing; ``data`` is the
    JSON-normalised measurement payload and ``markdown`` the rendered
    report body.
    """

    name: str
    title: str
    data: Any
    markdown: str
    tags: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "data", jsonable(self.data))
        object.__setattr__(self, "tags", tuple(self.tags))

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": RESULT_SCHEMA,
            "name": self.name,
            "title": self.title,
            "tags": list(self.tags),
            "data": self.data,
            "markdown": self.markdown,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "SectionResult":
        schema = document.get("schema", RESULT_SCHEMA)
        if schema != RESULT_SCHEMA:
            raise ValueError(
                f"unsupported results schema {schema!r} "
                f"(this build reads {RESULT_SCHEMA!r})"
            )
        return cls(
            name=document["name"],
            title=document["title"],
            data=document["data"],
            markdown=document["markdown"],
            tags=tuple(document.get("tags", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "SectionResult":
        return cls.from_dict(json.loads(text))
