"""Trace-engine cross-check: experiment figures driven from the corpus.

Demonstrates (and continuously verifies) that recorded workloads are
first-class, *shared* artifacts: for a slice of the scenario registry
the section resolves protected and baseline traces through the
content-addressed corpus store (:mod:`repro.corpus`) — recording on the
first runner invocation, replaying pure corpus hits thereafter — then
checks that the replayed statistics are bit-identical to the recorded
run's and computes a Figure-11-style slowdown entirely from the
persisted artifacts.  The rendered table reports, per scenario, whether
this invocation hit the corpus or had to record, and what the CALTRC02
compression bought.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, replace

from repro.corpus.store import CorpusStore
from repro.cpu.pipeline import MemoryEventCounts
from repro.experiments.context import RunContext
from repro.experiments.registry import experiment, section
from repro.experiments.results import SectionResult
from repro.memory.hierarchy import WESTMERE
from repro.traces.registry import CORPUS, TraceScenarioSpec
from repro.traces.replayer import replay_timing
from repro.workloads.generator import RunResult

#: Registry slice exercised by the report section (kept small: the
#: section runs inside the quick-mode experiment runner).
CHECK_SCENARIOS = ("server-churn", "allocator-stress", "pointer-chase")


@dataclass(frozen=True)
class TraceCheck:
    """Outcome of one corpus-resolve→replay→compare round."""

    name: str
    records: int
    stored_bytes: int
    compression_ratio: float
    source: str  # "corpus hit" or "recorded"
    recorded_cycles: float  # from the footer's persisted statistics
    replayed_cycles: float
    trace_slowdown: float  # protected-vs-baseline, computed from traces

    @property
    def bit_identical(self) -> bool:
        return self.recorded_cycles == self.replayed_cycles


def _cycles(spec: TraceScenarioSpec, result) -> float:
    return result.cycles(WESTMERE, spec.profile)


def _replay(store: CorpusStore, spec: TraceScenarioSpec):
    """Resolve a spec through the store; returns (result, footer, object)."""
    resolved = store.ensure(spec)
    result, footer = replay_timing(resolved.path, with_footer=True)
    return result, footer, resolved


def _footer_result(spec: TraceScenarioSpec, footer: dict) -> RunResult:
    """The recorded run's statistics, reconstructed from the footer alone
    (independent of the replay — the comparison's other arm)."""
    return RunResult(
        benchmark=footer["benchmark"],
        scenario=spec.build_scenario(),
        instructions=footer["instructions"],
        events=MemoryEventCounts(**footer["events"]),
        cform_instructions=footer["cform_instructions"],
        alloc_events=footer["alloc_events"],
    )


def run(instructions: int = 20_000, store: CorpusStore | None = None) -> list[TraceCheck]:
    """Resolve, replay and cross-check a slice of the scenario registry.

    Without a ``store`` an ephemeral one is used (standalone invocation);
    the runner passes its persistent default store, so a second runner
    invocation performs zero re-recording.
    """
    if store is None:
        with tempfile.TemporaryDirectory(prefix="repro-corpus-") as workdir:
            return run(instructions, CorpusStore(workdir))
    checks: list[TraceCheck] = []
    for name in CHECK_SCENARIOS:
        spec = CORPUS[name].scaled(instructions)
        replayed, footer, resolved = _replay(store, spec)
        # The slowdown figure's other trace: the same mix, unprotected —
        # the figure is then computed purely from persisted artifacts.
        baseline_spec = replace(
            spec, name=f"{name}-baseline", policy=None, with_cform=False
        )
        baseline_replayed, _, _ = _replay(store, baseline_spec)
        protected_cycles = _cycles(spec, replayed)
        baseline_cycles = _cycles(baseline_spec, baseline_replayed)
        checks.append(
            TraceCheck(
                name=name,
                records=resolved.entry.records,
                stored_bytes=resolved.entry.stored_bytes,
                compression_ratio=resolved.entry.compression_ratio,
                source="recorded" if resolved.built else "corpus hit",
                recorded_cycles=_cycles(spec, _footer_result(spec, footer)),
                replayed_cycles=protected_cycles,
                trace_slowdown=protected_cycles / baseline_cycles - 1.0,
            )
        )
    return checks


def render(checks: list[TraceCheck]) -> str:
    lines = [
        "scenario             records  stored B  ratio  replay==recorded"
        "  slowdown  source",
        "-------------------- ------- --------- ------ -----------------"
        " --------- ----------",
    ]
    for check in checks:
        lines.append(
            f"{check.name:20s} {check.records:7d} {check.stored_bytes:9d} "
            f"{check.compression_ratio:5.1f}x "
            f"{'yes' if check.bit_identical else 'NO':>17s} "
            f"{check.trace_slowdown * 100.0:8.2f}%  {check.source}"
        )
    lines.append("")
    lines.append(
        "replay==recorded: replaying the corpus object reproduces the "
        "recorded run's cycle statistics bit-identically;"
    )
    lines.append(
        "the slowdown column is a Figure-11-style protected-vs-baseline "
        "ratio computed entirely from corpus traces;"
    )
    lines.append(
        "source shows whether this invocation reused the corpus "
        "('corpus hit') or had to record ('recorded')."
    )
    return "\n".join(lines)


@experiment(
    name="traces",
    title="Trace engine — figures from recorded traces",
    tags=("trace",),
    needs=("instructions", "corpus"),
    order=120,
)
def run_experiment(ctx: RunContext) -> SectionResult:
    # A fraction of the figure trace length keeps the recorded files and
    # this section's runtime small; the invariant is length-independent.
    checks = run(instructions=ctx.instructions // 4, store=ctx.store)
    data = {
        "scenarios": list(CHECK_SCENARIOS),
        "checks": checks,
        "all_bit_identical": all(check.bit_identical for check in checks),
    }
    return section("traces", data, render(checks))
