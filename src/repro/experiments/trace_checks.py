"""Trace-engine cross-check: experiment figures driven from recorded traces.

Demonstrates (and continuously verifies) that the trace engine makes
workloads first-class artifacts: for a slice of the scenario corpus the
section records the live run to a trace file, replays the file through a
fresh cache ladder, and compares — the replayed statistics must be
bit-identical.  It then computes a Figure-11-style slowdown *from the
recorded traces alone*: a baseline trace and a protected trace of the
same mix are replayed and their cycle ratio taken through the same
pipeline model the live figures use, showing that any timing figure can
run from persisted traces instead of re-synthesising its workload.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, replace

from repro.memory.hierarchy import WESTMERE
from repro.traces.recorder import record_spec
from repro.traces.registry import CORPUS, TraceScenarioSpec
from repro.traces.replayer import replay_timing

#: Corpus slice exercised by the report section (kept small: the section
#: runs inside the quick-mode experiment runner).
CHECK_SCENARIOS = ("server-churn", "allocator-stress", "pointer-chase")


@dataclass(frozen=True)
class TraceCheck:
    """Outcome of one record→replay→compare round."""

    name: str
    records: int
    trace_bytes: int
    live_cycles: float
    replayed_cycles: float
    trace_slowdown: float  # protected-vs-baseline, computed from traces

    @property
    def bit_identical(self) -> bool:
        return self.live_cycles == self.replayed_cycles


def _cycles(spec: TraceScenarioSpec, result) -> float:
    return result.cycles(WESTMERE, spec.profile)


def run(instructions: int = 20_000) -> list[TraceCheck]:
    """Record, replay and cross-check a slice of the scenario corpus."""
    checks: list[TraceCheck] = []
    with tempfile.TemporaryDirectory(prefix="repro-traces-") as workdir:
        for name in CHECK_SCENARIOS:
            spec = CORPUS[name].scaled(instructions)
            path = os.path.join(workdir, f"{name}.trace")
            live = record_spec(spec, path)
            # One replay pass both verifies against the footer and hands
            # it back (record counts) — no extra scan of the file.
            replayed, footer = replay_timing(path, with_footer=True)
            # A second trace of the same mix, unprotected: the slowdown
            # figure is then computed purely from persisted artifacts.
            baseline_spec = replace(
                spec, name=f"{name}-baseline", policy=None, with_cform=False
            )
            baseline_path = os.path.join(workdir, f"{name}-baseline.trace")
            record_spec(baseline_spec, baseline_path)
            baseline_replayed = replay_timing(baseline_path)
            protected_cycles = _cycles(spec, replayed)
            baseline_cycles = _cycles(baseline_spec, baseline_replayed)
            checks.append(
                TraceCheck(
                    name=name,
                    records=footer["records"],
                    trace_bytes=os.path.getsize(path),
                    live_cycles=_cycles(spec, live),
                    replayed_cycles=protected_cycles,
                    trace_slowdown=protected_cycles / baseline_cycles - 1.0,
                )
            )
    return checks


def render(checks: list[TraceCheck]) -> str:
    lines = [
        "scenario             records   bytes  replay==live  trace-driven slowdown",
        "-------------------- ------- ------- ------------- ----------------------",
    ]
    for check in checks:
        lines.append(
            f"{check.name:20s} {check.records:7d} {check.trace_bytes:7d} "
            f"{'yes' if check.bit_identical else 'NO':>13s} "
            f"{check.trace_slowdown * 100.0:21.2f}%"
        )
    lines.append("")
    lines.append(
        "replay==live: cycle statistics of the trace replay are "
        "bit-identical to the live run (round-trip invariant);"
    )
    lines.append(
        "the slowdown column is a Figure-11-style protected-vs-baseline "
        "ratio computed entirely from recorded traces."
    )
    return "\n".join(lines)
