"""Figure 4: average slowdown as fixed padding grows from 1 B to 7 B.

Paper: monotonic growth from 3.0 % (1 B) to 7.6 % (7 B) across the 19
SPEC benchmarks, "mainly due to ineffective cache usage".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.suite import SuiteResult, sweep
from repro.experiments.context import RunContext
from repro.experiments.registry import experiment, section
from repro.experiments.results import SectionResult
from repro.workloads.generator import Scenario
from repro.workloads.specs import FIG10_BENCHMARKS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.store import CorpusStore

#: Paper values: average slowdown per padding size (percent).
PAPER = {1: 3.0, 2: 5.4, 3: 5.8, 4: 5.8, 5: 6.0, 6: 6.2, 7: 7.6}

PADDING_SIZES = tuple(range(1, 8))


@dataclass(frozen=True)
class PaddingSweepResult:
    per_size: dict[int, SuiteResult]

    def averages(self) -> dict[int, float]:
        return {size: result.average for size, result in self.per_size.items()}


def run(
    instructions: int = 100_000,
    benchmarks: list[str] | None = None,
    sizes: tuple[int, ...] = PADDING_SIZES,
    store: "CorpusStore | None" = None,
) -> PaddingSweepResult:
    """``store`` resolves every cell through the recorded-trace corpus
    (:class:`repro.corpus.CorpusStore`); the seven padding sizes then
    share one recorded baseline per benchmark instead of re-running it."""
    benchmarks = benchmarks or FIG10_BENCHMARKS
    per_size = {
        size: sweep(
            benchmarks,
            Scenario(policy=("fixed", size)),
            instructions=instructions,
            label=f"fixed {size}B padding",
            store=store,
        )
        for size in sizes
    }
    return PaddingSweepResult(per_size=per_size)


def render(result: PaddingSweepResult) -> str:
    lines = ["Figure 4: slowdown vs fixed per-field padding", ""]
    lines.append("padding  measured  paper")
    for size, average in sorted(result.averages().items()):
        paper = PAPER.get(size)
        paper_text = f"{paper:5.1f}%" if paper is not None else "    -"
        lines.append(f"  {size}B     {average * 100:6.2f}%   {paper_text}")
    return "\n".join(lines)


@experiment(
    name="fig04",
    title="Figure 4 — fixed padding sweep",
    tags=("figure", "trace"),
    needs=("instructions", "corpus"),
    order=20,
)
def run_experiment(ctx: RunContext) -> SectionResult:
    result = run(instructions=ctx.instructions, store=ctx.store)
    data = {
        "paper": PAPER,
        "averages": result.averages(),
        "per_size": result.per_size,
    }
    return section("fig04", data, render(result))
