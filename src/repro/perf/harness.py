"""Timing loop shared by every perf scenario.

Follows the conventional warmup-then-measure shape: ``warmup`` unrecorded
iterations bring caches, memoization tables and the interpreter's inline
caches to steady state, then ``iterations`` timed repetitions produce a
sample distribution summarised as ops/sec plus p50/p95 latencies.  All
timing uses :func:`time.perf_counter`.
"""

from __future__ import annotations

import cProfile
from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Callable


@dataclass(frozen=True)
class BenchResult:
    """Summary statistics for one measured scenario."""

    name: str
    iterations: int
    warmup: int
    ops_per_iteration: int
    total_s: float
    mean_s: float
    min_s: float
    max_s: float
    p50_s: float
    p95_s: float
    ops_per_sec: float

    def to_dict(self) -> dict:
        return asdict(self)


def percentile(samples: list[float], fraction: float) -> float:
    """Linear-interpolation percentile of ``samples`` (``fraction`` in [0, 1])."""
    if not samples:
        raise ValueError("percentile of an empty sample set")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def run_timed(
    func: Callable[[], object],
    *,
    name: str,
    iterations: int,
    warmup: int,
    ops_per_iteration: int = 1,
) -> BenchResult:
    """Time ``func`` and summarise the per-iteration sample distribution."""
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    for _ in range(warmup):
        func()
    samples: list[float] = []
    for _ in range(iterations):
        started = perf_counter()
        func()
        samples.append(perf_counter() - started)
    total = sum(samples)
    mean = total / iterations
    return BenchResult(
        name=name,
        iterations=iterations,
        warmup=warmup,
        ops_per_iteration=ops_per_iteration,
        total_s=total,
        mean_s=mean,
        min_s=min(samples),
        max_s=max(samples),
        p50_s=percentile(samples, 0.50),
        p95_s=percentile(samples, 0.95),
        ops_per_sec=(ops_per_iteration / mean) if mean > 0 else float("inf"),
    )


def profile_into(func: Callable[[], object], path: str, iterations: int) -> None:
    """Run ``func`` under cProfile and dump the stats to ``path``."""
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(iterations):
        func()
    profiler.disable()
    profiler.dump_stats(path)
