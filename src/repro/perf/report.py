"""Machine-readable benchmark reports: the ``BENCH_*.json`` trajectory.

One report per harness run.  Reports accumulate under
``benchmarks/trajectory/`` so successive PRs leave an auditable speedup
record; BENCHMARKS.md documents the schema and reading guide.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

from repro.perf.harness import BenchResult

#: Bump when the JSON layout changes shape (additive changes don't count).
SCHEMA_VERSION = 1

#: Default location of the checked-in trajectory.
DEFAULT_OUTPUT_DIR = os.path.join("benchmarks", "trajectory")


def build_report(
    results: list[BenchResult],
    *,
    label: str,
    iterations_override: int | None = None,
    warmup_override: int | None = None,
    quick: bool = False,
) -> dict:
    """Assemble the report dictionary for one harness run."""
    return {
        "schema_version": SCHEMA_VERSION,
        "label": label,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "quick": quick,
        "overrides": {
            "iterations": iterations_override,
            "warmup": warmup_override,
        },
        "scenarios": {result.name: result.to_dict() for result in results},
    }


def write_report(report: dict, output_dir: str = DEFAULT_OUTPUT_DIR) -> str:
    """Write ``BENCH_<label>.json`` into ``output_dir``; return the path."""
    os.makedirs(output_dir, exist_ok=True)
    label = report["label"]
    path = os.path.join(output_dir, f"BENCH_{label}.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def default_label() -> str:
    """Filesystem-safe UTC timestamp label, e.g. ``20260726T081500Z``."""
    return time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())


def load_report(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)
