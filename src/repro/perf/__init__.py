"""Performance harness for the Califorms simulator.

The paper's design argument is that the *common case stays fast*:
califormed lines are converted exactly once per L1 fill or spill, and
every other access runs at natural speed.  This package applies the same
discipline to the simulator itself — it measures the software hot paths
(the sentinel codec, the L1 hit path, the full experiment pipeline) and
records a machine-readable trajectory so regressions are visible PR over
PR.

Entry point::

    python -m repro.perf [--iterations N] [--warmup N] [--profile]
                         [--scenario NAME ...] [--label LABEL]

Each run writes ``BENCH_<label>.json`` (default label: a UTC timestamp)
under ``benchmarks/trajectory/``; see BENCHMARKS.md for the schema and
how to read the trajectory.
"""

from repro.perf.harness import BenchResult, run_timed
from repro.perf.report import SCHEMA_VERSION, build_report, write_report
from repro.perf.scenarios import SCENARIOS, get_scenarios

__all__ = [
    "BenchResult",
    "run_timed",
    "SCHEMA_VERSION",
    "build_report",
    "write_report",
    "SCENARIOS",
    "get_scenarios",
]
