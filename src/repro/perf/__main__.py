"""CLI for the perf harness: ``python -m repro.perf``.

Examples::

    python -m repro.perf                          # all scenarios, defaults
    python -m repro.perf --scenario codec_encode --scenario codec_decode
    python -m repro.perf --iterations 50 --warmup 5
    python -m repro.perf --profile                # also dump .prof files
    python -m repro.perf --label baseline         # BENCH_baseline.json
    python -m repro.perf --quick                  # smoke-sized workloads

See BENCHMARKS.md for the scenario list and the JSON schema.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.perf.harness import profile_into, run_timed
from repro.perf.report import (
    DEFAULT_OUTPUT_DIR,
    build_report,
    default_label,
    write_report,
)
from repro.perf.scenarios import SCENARIOS, get_scenarios


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Benchmark the simulator's hot paths and record a "
        "BENCH_<label>.json trajectory entry.",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="scenario to run (repeatable; default: all). "
        f"Known: {', '.join(SCENARIOS)}",
    )
    parser.add_argument(
        "--iterations", type=int, default=None,
        help="timed iterations per scenario (default: per-scenario)",
    )
    parser.add_argument(
        "--warmup", type=int, default=None,
        help="unrecorded warmup iterations (default: per-scenario)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="additionally run each scenario under cProfile and write "
        "<output-dir>/profiles/<scenario>.prof",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke-sized workloads and few iterations (CI smoke mode)",
    )
    parser.add_argument(
        "--label", default=None,
        help="report label; output file is BENCH_<label>.json "
        "(default: UTC timestamp)",
    )
    parser.add_argument(
        "--output-dir", default=DEFAULT_OUTPUT_DIR,
        help=f"where to write the report (default: {DEFAULT_OUTPUT_DIR})",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="print the summary but do not write a BENCH_*.json file",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    arguments = parser.parse_args(argv)

    if arguments.list:
        for scenario in SCENARIOS.values():
            print(f"{scenario.name:32s} {scenario.description}")
        return 0

    if arguments.iterations is not None and arguments.iterations < 1:
        parser.error("--iterations must be >= 1")
    if arguments.warmup is not None and arguments.warmup < 0:
        parser.error("--warmup must be >= 0")
    try:
        scenarios = get_scenarios(arguments.scenario)
    except KeyError as error:
        parser.error(str(error))

    results = []
    for scenario in scenarios:
        func, ops = scenario.build(arguments.quick)
        iterations = (
            arguments.iterations
            if arguments.iterations is not None
            else (3 if arguments.quick else scenario.default_iterations)
        )
        warmup = (
            arguments.warmup
            if arguments.warmup is not None
            else (1 if arguments.quick else scenario.default_warmup)
        )
        result = run_timed(
            func,
            name=scenario.name,
            iterations=iterations,
            warmup=warmup,
            ops_per_iteration=ops,
        )
        results.append(result)
        print(
            f"{result.name:32s} {result.ops_per_sec:12.1f} ops/s  "
            f"p50 {result.p50_s * 1e3:8.3f} ms  p95 {result.p95_s * 1e3:8.3f} ms"
        )
        if arguments.profile:
            profile_dir = os.path.join(arguments.output_dir, "profiles")
            os.makedirs(profile_dir, exist_ok=True)
            profile_path = os.path.join(profile_dir, f"{scenario.name}.prof")
            profile_into(func, profile_path, max(1, iterations // 3))
            print(f"{'':32s} profile -> {profile_path}")

    label = arguments.label or default_label()
    report = build_report(
        results,
        label=label,
        iterations_override=arguments.iterations,
        warmup_override=arguments.warmup,
        quick=arguments.quick,
    )
    if arguments.no_write:
        return 0
    path = write_report(report, arguments.output_dir)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
