"""Perf scenarios: the simulator's hot paths, packaged for the harness.

Each scenario builds a deterministic workload (fixed RNG seeds) and
returns a zero-argument callable plus the number of logical operations
one call performs, so the harness can report ops/sec.  The codec
scenarios deliberately mirror ``benchmarks/test_microbench_codec.py`` —
the trajectory produced here is the regression record for those
microbenchmarks.

Scenario families:

``codec_*``
    The sentinel spill/fill paths (Algorithms 1 and 2) — the conversion
    work Table 2 prices in hardware.
``normalize``
    Security-byte zeroing, the L1-side canonicalisation step.
``hierarchy_*`` / ``trace_replay``
    The functional memory stack: hit path, califormed eviction pressure,
    and a mixed load/store trace replayed through the batched API when
    the hierarchy provides one.
``trace_record`` / ``trace_file_replay`` / ``trace_multicore_replay``
    The trace engine (``repro.traces``): recording a registry scenario
    to an in-memory trace, the streaming bit-identical replay of it, and
    the 2-core shared-L3 interleaved replay of an antagonist pair.
``trace_compress`` / ``trace_decompress_replay``
    The CALTRC02 codec hot paths: transcoding a recorded v1 trace into
    compressed frames (delta/run-length tokenisation + zlib), and the
    streaming replay that inflates and de-tokenises frame by frame —
    the corpus store's write and read sides.
``trace_columnar_*`` / ``trace_records_*``
    The replay-engine pair: the same workloads with the engine pinned to
    ``columnar`` (array-native decode + batched tag kernel) or to the
    retained per-record oracle, so every report carries its own
    columnar-vs-records speedup.  The unpinned ``trace_*_replay``
    scenarios above default to the columnar engine when numpy is
    available.
``loadgen_generate``
    The open-loop traffic engine (``repro.loadgen``): composing a
    2-tenant scenario's merged arrival stream and recording it as one
    compressed CALTRC02 trace.
``serve_fetch`` / ``serve_results``
    The corpus/experiment service (``repro.serve``), measured over real
    sockets against an in-process server: fetch-by-digest object reads
    on a keep-alive connection, and the results cache's 304
    revalidation path.
``experiment_e2e``
    A small end-to-end slice of the Figure 10 experiment pipeline.
``codec_reference``
    The retained pure-reference codec, measured with the same workload
    as ``codec_encode``/``codec_decode`` so every report carries its own
    optimized-vs-reference speedup.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.core import bitvector as bv
from repro.core import line_formats, sentinel
from repro.core.cform import CformRequest
from repro.core.line_formats import BitvectorLine
from repro.memory.cache import CacheGeometry
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy

#: (callable, ops_per_iteration) returned by each scenario factory.
Workload = tuple[Callable[[], object], int]


@dataclass(frozen=True)
class Scenario:
    name: str
    description: str
    build: Callable[[bool], Workload]
    default_iterations: int = 30
    default_warmup: int = 3


def _random_lines(count: int, security_bytes: int, seed: int = 0) -> list[BitvectorLine]:
    rng = random.Random(seed)
    lines = []
    for _ in range(count):
        data = bytearray(rng.randrange(256) for _ in range(64))
        indices = rng.sample(range(64), security_bytes)
        lines.append(BitvectorLine(data, bv.mask_from_indices(indices)))
    return lines


def _codec_encode(quick: bool) -> Workload:
    count = 64 if quick else 256
    lines = _random_lines(count, security_bytes=6)
    encode = sentinel.encode

    def spill_all() -> None:
        for line in lines:
            encode(line)

    return spill_all, count


def _codec_decode(quick: bool) -> Workload:
    count = 64 if quick else 256
    encoded = [sentinel.encode(line) for line in _random_lines(count, security_bytes=6)]
    decode = sentinel.decode

    def fill_all() -> None:
        for line in encoded:
            decode(line)

    return fill_all, count


def _codec_roundtrip_dense(quick: bool) -> Workload:
    count = 32 if quick else 128
    lines = _random_lines(count, security_bytes=24, seed=1)
    encode, decode = sentinel.encode, sentinel.decode

    def roundtrip_all() -> None:
        for line in lines:
            decode(encode(line))

    return roundtrip_all, count


def _codec_reference(quick: bool) -> Workload:
    # Before the fast-path rewrite the reference IS the production codec;
    # afterwards the retained *_reference functions keep this comparable.
    encode = getattr(sentinel, "encode_reference", sentinel.encode)
    decode = getattr(sentinel, "decode_reference", sentinel.decode)
    count = 64 if quick else 256
    lines = _random_lines(count, security_bytes=6)
    encoded = [encode(line) for line in lines]

    def reference_both() -> None:
        for line in lines:
            encode(line)
        for enc in encoded:
            decode(enc)

    return reference_both, 2 * count


def _normalize(quick: bool) -> Workload:
    count = 64 if quick else 256
    rng = random.Random(3)
    pairs = []
    for _ in range(count):
        data = bytes(rng.randrange(256) for _ in range(64))
        pairs.append((data, rng.getrandbits(64) & bv.FULL_MASK))
    normalize = line_formats.normalize_security_bytes

    def normalize_all() -> None:
        for data, mask in pairs:
            normalize(data, mask)

    return normalize_all, count


def _hierarchy_l1_hits(quick: bool) -> Workload:
    count = 64 if quick else 256
    hierarchy = MemoryHierarchy()
    hierarchy.store_or_raise(0x1000, b"warm")
    load = hierarchy.load

    def hit_loop() -> None:
        for _ in range(count):
            load(0x1000, 8)

    return hit_loop, count


def _hierarchy_califormed_evictions(quick: bool) -> Workload:
    lines = 32 if quick else 64
    config = HierarchyConfig(
        l1_geometry=CacheGeometry(8 * 64, 2),
        l2_geometry=CacheGeometry(32 * 64, 4),
        l3_geometry=CacheGeometry(128 * 64, 8),
    )
    hierarchy = MemoryHierarchy(config)
    for index in range(lines):
        hierarchy.cform(CformRequest.set_bytes(index * 64, [1, 2, 3]))
    load = hierarchy.load

    def thrash() -> None:
        for index in range(lines):
            load(index * 64 + 8, 4)

    return thrash, lines


def _make_trace(ops: int, seed: int = 7) -> list[tuple]:
    """Mixed load/store trace over 512 lines, ~10% of them califormed."""
    rng = random.Random(seed)
    trace: list[tuple] = []
    for _ in range(ops):
        line = rng.randrange(512)
        offset = rng.randrange(56)
        address = line * 64 + offset
        if rng.random() < 0.5:
            trace.append(("L", address, rng.choice((1, 2, 4, 8))))
        else:
            trace.append(("S", address, bytes([rng.randrange(256)] * 4)))
    return trace


def _trace_replay(quick: bool) -> Workload:
    ops = 512 if quick else 4096
    trace = _make_trace(ops)
    hierarchy = MemoryHierarchy()
    for line in range(0, 512, 10):
        hierarchy.cform(CformRequest.set_bytes(line * 64, [62, 63]))
    replay = getattr(hierarchy, "replay_trace", None)
    if replay is not None:
        def run_trace() -> None:
            replay(trace)
    else:
        # Pre-batched-API fallback: the per-op public interface.
        def run_trace() -> None:
            for op in trace:
                if op[0] == "L":
                    hierarchy.load(op[1], op[2])
                else:
                    hierarchy.store(op[1], op[2])

    return run_trace, ops


def _trace_record(quick: bool) -> Workload:
    from io import BytesIO

    from repro.traces.recorder import record_spec
    from repro.traces.registry import corpus_spec

    spec = corpus_spec("allocator-stress").scaled(2_000 if quick else 10_000)

    def record_once() -> None:
        record_spec(spec, BytesIO())

    return record_once, 1


def _trace_file_replay(quick: bool) -> Workload:
    from io import BytesIO

    from repro.traces.recorder import record_spec
    from repro.traces.registry import corpus_spec
    from repro.traces.replayer import replay_timing

    spec = corpus_spec("server-churn").scaled(2_000 if quick else 10_000)
    buffer = BytesIO()
    record_spec(spec, buffer)
    raw = buffer.getvalue()

    def replay_once() -> None:
        replay_timing(BytesIO(raw))

    from repro.traces.format import TraceReader

    records = TraceReader(BytesIO(raw)).read_footer()["records"]
    return replay_once, records


def _trace_multicore_replay(quick: bool) -> Workload:
    from io import BytesIO

    from repro.traces.format import TraceReader
    from repro.traces.recorder import record_spec
    from repro.traces.registry import corpus_spec
    from repro.traces.replayer import replay_multicore

    length = 2_000 if quick else 8_000
    raws: list[bytes] = []
    records = 0
    for name in ("server-churn", "pointer-chase"):
        buffer = BytesIO()
        record_spec(corpus_spec(name).scaled(length), buffer)
        raws.append(buffer.getvalue())
        records += TraceReader(BytesIO(raws[-1])).read_footer()["records"]

    def replay_once() -> None:
        replay_multicore([BytesIO(raw) for raw in raws], jobs=1)

    return replay_once, records


def _trace_compress(quick: bool) -> Workload:
    from io import BytesIO

    from repro.traces.compress import transcode
    from repro.traces.format import TraceReader
    from repro.traces.recorder import record_spec
    from repro.traces.registry import corpus_spec

    spec = corpus_spec("server-churn").scaled(2_000 if quick else 10_000)
    buffer = BytesIO()
    record_spec(spec, buffer)
    raw = buffer.getvalue()
    records = TraceReader(BytesIO(raw)).read_footer()["records"]

    def compress_once() -> None:
        transcode(BytesIO(raw), BytesIO(), version=2)

    return compress_once, records


def _trace_decompress_replay(quick: bool) -> Workload:
    from io import BytesIO

    from repro.traces.format import TraceReader
    from repro.traces.recorder import record_spec
    from repro.traces.registry import corpus_spec
    from repro.traces.replayer import replay_timing

    spec = corpus_spec("server-churn").scaled(2_000 if quick else 10_000)
    buffer = BytesIO()
    record_spec(spec, buffer, compress=True)
    raw = buffer.getvalue()
    records = TraceReader(BytesIO(raw)).read_footer()["records"]

    def replay_once() -> None:
        replay_timing(BytesIO(raw))

    return replay_once, records


def _engine_replay(quick: bool, engine: str) -> Workload:
    from io import BytesIO

    from repro.traces.format import TraceReader
    from repro.traces.recorder import record_spec
    from repro.traces.registry import corpus_spec
    from repro.traces.replayer import replay_timing

    spec = corpus_spec("server-churn").scaled(2_000 if quick else 10_000)
    buffer = BytesIO()
    record_spec(spec, buffer, compress=True)
    raw = buffer.getvalue()
    records = TraceReader(BytesIO(raw)).read_footer()["records"]

    def replay_once() -> None:
        replay_timing(BytesIO(raw), engine=engine)

    return replay_once, records


def _trace_columnar_replay(quick: bool) -> Workload:
    return _engine_replay(quick, "columnar")


def _trace_records_replay(quick: bool) -> Workload:
    return _engine_replay(quick, "records")


def _engine_mc_replay(quick: bool, engine: str) -> Workload:
    from io import BytesIO

    from repro.traces.format import TraceReader
    from repro.traces.recorder import record_spec
    from repro.traces.registry import corpus_spec
    from repro.traces.replayer import replay_multicore

    length = 2_000 if quick else 8_000
    raws: list[bytes] = []
    records = 0
    for name in ("server-churn", "pointer-chase"):
        buffer = BytesIO()
        record_spec(corpus_spec(name).scaled(length), buffer)
        raws.append(buffer.getvalue())
        records += TraceReader(BytesIO(raws[-1])).read_footer()["records"]

    def replay_once() -> None:
        replay_multicore(
            [BytesIO(raw) for raw in raws], jobs=1, engine=engine
        )

    return replay_once, records


def _trace_columnar_mc_replay(quick: bool) -> Workload:
    return _engine_mc_replay(quick, "columnar")


def _trace_records_mc_replay(quick: bool) -> Workload:
    return _engine_mc_replay(quick, "records")


def _loadgen_generate(quick: bool) -> Workload:
    from io import BytesIO

    from repro.loadgen.compose import compose_spec
    from repro.loadgen.schema import ArrivalSpec, LoadScenario, MixEntry
    from repro.traces.recorder import record_spec

    load = LoadScenario(
        name="perf-loadgen",
        description="perf harness: 2-tenant allocator-stress composition",
        arrival=ArrivalSpec(kind="poisson", lambda_per_s=300.0),
        mix=(MixEntry(profile="allocator-stress", weight=1.0),),
        tenants=2,
        duration_s=0.25 if quick else 0.5,
        seed=5,
    )
    spec = compose_spec(load)

    def generate_once() -> None:
        record_spec(spec, BytesIO(), compress=True)

    return generate_once, 1


def _start_serve(corpus_root: str, results_dir: str) -> int:
    """Run a :class:`~repro.serve.app.ServeApp` in a daemon thread.

    Returns the ephemeral port once the server is accepting.  The thread
    lives for the rest of the process — fine for a perf run, where the
    harness process exits after the report is written.
    """
    import asyncio
    import threading

    from repro.serve.app import ServeApp

    app = ServeApp(corpus_root, results_dir)
    ready = threading.Event()
    bound: dict[str, int] = {}

    def run() -> None:
        async def serve() -> None:
            server = await app.start("127.0.0.1", 0)
            bound["port"] = server.sockets[0].getsockname()[1]
            ready.set()
            async with server:
                await server.serve_forever()

        asyncio.run(serve())

    threading.Thread(target=run, daemon=True, name="perf-serve").start()
    if not ready.wait(timeout=30):
        raise RuntimeError("serve app failed to start within 30s")
    return bound["port"]


def _serve_fetch(quick: bool) -> Workload:
    import http.client
    import tempfile

    from repro.corpus.store import CorpusStore
    from repro.traces.registry import corpus_spec

    root = tempfile.mkdtemp(prefix="repro-perf-serve-")
    store = CorpusStore(root)
    spec = corpus_spec("pointer-chase").scaled(2_000 if quick else 8_000)
    digest = store.ensure(spec).entry.digest
    port = _start_serve(root, root)  # no results dir needed here
    count = 8 if quick else 32

    def fetch_all() -> None:
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            for _ in range(count):
                connection.request("GET", f"/objects/{digest}")
                response = connection.getresponse()
                response.read()
                assert response.status == 200, response.status
        finally:
            connection.close()

    return fetch_all, count


def _serve_results(quick: bool) -> Workload:
    import http.client
    import json as json_module
    import os
    import tempfile

    from repro.experiments.results import RESULT_SCHEMA

    results_dir = tempfile.mkdtemp(prefix="repro-perf-results-")
    document = {
        "schema": RESULT_SCHEMA,
        "section": "perf",
        "title": "perf harness serve_results section",
        "data": {"series": list(range(64))},
    }
    with open(os.path.join(results_dir, "perf.json"), "w") as handle:
        json_module.dump(document, handle, indent=2, sort_keys=True)
    port = _start_serve(results_dir, results_dir)
    count = 8 if quick else 64

    def revalidate_all() -> None:
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            connection.request("GET", "/results/perf")
            response = connection.getresponse()
            response.read()
            assert response.status == 200, response.status
            etag = response.getheader("ETag")
            for _ in range(count - 1):
                connection.request(
                    "GET", "/results/perf", headers={"If-None-Match": etag}
                )
                response = connection.getresponse()
                response.read()
                assert response.status == 304, response.status
        finally:
            connection.close()

    return revalidate_all, count


def _experiment_e2e(quick: bool) -> Workload:
    from repro.experiments import fig10_extra_latency

    instructions = 4000 if quick else 8000
    benchmarks = fig10_extra_latency.FIG10_BENCHMARKS[:2]

    def run_slice() -> None:
        fig10_extra_latency.run(instructions=instructions, benchmarks=benchmarks)

    return run_slice, 1


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "codec_encode",
            "sentinel spill path (Algorithm 1), 6 security bytes/line",
            _codec_encode,
        ),
        Scenario(
            "codec_decode",
            "sentinel fill path (Algorithm 2), 6 security bytes/line",
            _codec_decode,
        ),
        Scenario(
            "codec_roundtrip_dense",
            "encode+decode with 24 security bytes/line (sentinel scan stress)",
            _codec_roundtrip_dense,
        ),
        Scenario(
            "codec_reference",
            "pure-reference encode+decode on the codec_encode workload",
            _codec_reference,
        ),
        Scenario(
            "normalize",
            "security-byte zeroing over random 64-bit masks",
            _normalize,
        ),
        Scenario(
            "hierarchy_l1_hits",
            "repeated L1 hit-path loads of one warm line",
            _hierarchy_l1_hits,
        ),
        Scenario(
            "hierarchy_califormed_evictions",
            "califormed spill/fill under eviction pressure (tiny geometry)",
            _hierarchy_califormed_evictions,
        ),
        Scenario(
            "trace_replay",
            "mixed load/store trace through the hierarchy's batched fast loop",
            _trace_replay,
        ),
        Scenario(
            "trace_record",
            "trace engine: record one allocator-stress run to a memory buffer",
            _trace_record,
            default_iterations=10,
            default_warmup=1,
        ),
        Scenario(
            "trace_file_replay",
            "trace engine: streaming bit-identical replay of a recorded trace",
            _trace_file_replay,
            default_iterations=10,
            default_warmup=1,
        ),
        Scenario(
            "trace_multicore_replay",
            "2-core shared-L3 replay of a server-churn + pointer-chase pair",
            _trace_multicore_replay,
            default_iterations=10,
            default_warmup=1,
        ),
        Scenario(
            "trace_compress",
            "CALTRC02 encode: delta/run-length tokenise + deflate a v1 trace",
            _trace_compress,
            default_iterations=10,
            default_warmup=1,
        ),
        Scenario(
            "trace_decompress_replay",
            "CALTRC02 decode: streaming frame-inflating bit-identical replay",
            _trace_decompress_replay,
            default_iterations=10,
            default_warmup=1,
        ),
        Scenario(
            "trace_columnar_replay",
            "columnar engine pinned: batched decode+replay of a v2 trace",
            _trace_columnar_replay,
            default_iterations=10,
            default_warmup=1,
        ),
        Scenario(
            "trace_records_replay",
            "per-record oracle pinned: same v2 trace as trace_columnar_replay",
            _trace_records_replay,
            default_iterations=10,
            default_warmup=1,
        ),
        Scenario(
            "trace_columnar_mc_replay",
            "columnar engine pinned: 2-core shared-L3 replay of the mc pair",
            _trace_columnar_mc_replay,
            default_iterations=10,
            default_warmup=1,
        ),
        Scenario(
            "trace_records_mc_replay",
            "per-record oracle pinned: same pair as trace_columnar_mc_replay",
            _trace_records_mc_replay,
            default_iterations=10,
            default_warmup=1,
        ),
        Scenario(
            "loadgen_generate",
            "traffic engine: compose + record a 2-tenant open-loop scenario",
            _loadgen_generate,
            default_iterations=10,
            default_warmup=1,
        ),
        Scenario(
            "serve_fetch",
            "repro.serve: fetch-by-digest object GETs over one keep-alive "
            "connection",
            _serve_fetch,
            default_iterations=10,
            default_warmup=1,
        ),
        Scenario(
            "serve_results",
            "repro.serve: cached section-result GETs (one 200, then 304 "
            "revalidations)",
            _serve_results,
            default_iterations=10,
            default_warmup=1,
        ),
        Scenario(
            "experiment_e2e",
            "end-to-end Figure 10 slice (2 benchmarks, short trace)",
            _experiment_e2e,
            default_iterations=5,
            default_warmup=1,
        ),
    )
}


def get_scenarios(names: list[str] | None) -> list[Scenario]:
    """Resolve scenario names (``None`` → all), preserving registry order."""
    if not names:
        return list(SCENARIOS.values())
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        known = ", ".join(SCENARIOS)
        raise KeyError(f"unknown scenario(s) {unknown}; known: {known}")
    return [SCENARIOS[name] for name in names]
