"""CLI for the corpus store: ``python -m repro.corpus``.

Subcommands::

    build   [--scenario NAME ...] [--instructions N]
            record any registry mixes missing from the store
    ls      manifest table: scenario, fingerprint, digest, sizes, ratio
    verify  re-hash every object against its manifest digest; non-zero
            exit on problems, ``--repair`` self-heals them (quarantine +
            re-record from the manifest-stored spec)
    gc      drop unreferenced objects, stale manifest entries and
            quarantined damage older than ``--keep-days``
    key     print the registry fingerprint (the CI cache key)
    pack    frame objects (all, or ``--scenario`` selections) into one
            content-addressed ``.pack`` container for distribution
    unpack  install a pack's objects + manifest bindings into the store

The store root is ``--root``, else ``$REPRO_CORPUS_DIR``, else
``./.repro-corpus``.  Examples::

    python -m repro.corpus build --instructions 8000
    python -m repro.corpus ls
    python -m repro.corpus verify
    python -m repro.corpus verify --repair
    python -m repro.corpus gc --keep-days 3
    python -m repro.corpus key
    python -m repro.corpus pack
    python -m repro.corpus pack --scenario server-churn --out churn.pack
    python -m repro.corpus unpack churn.pack

See the "Corpus & compression" section of BENCHMARKS.md for the store
layout and measured compression ratios.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.corpus.store import (
    DEFAULT_ROOT,
    ENV_ROOT,
    CorpusStore,
    registry_fingerprint,
)
from repro.traces.format import TraceFormatError
from repro.traces.registry import CORPUS


def _store(arguments: argparse.Namespace) -> CorpusStore:
    return CorpusStore(arguments.root)


def _cmd_build(arguments: argparse.Namespace) -> int:
    store = _store(arguments)
    names = arguments.scenario or sorted(CORPUS)
    unknown = sorted(set(names) - set(CORPUS))
    if unknown:
        raise KeyError(
            f"unknown scenario(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(CORPUS))}"
        )
    outcomes = store.build_registry(names, arguments.instructions)
    width = max(len(outcome.entry.scenario) for outcome in outcomes)
    for outcome in outcomes:
        entry = outcome.entry
        print(
            f"{entry.scenario:{width}s}  "
            f"{'recorded' if outcome.built else 'corpus hit':10s} "
            f"{entry.records:>8d} records  "
            f"{entry.stored_bytes:>9d} B stored  "
            f"{entry.compression_ratio:6.1f}x  {entry.digest[:12]}"
        )
    print(
        f"\n{store.built} recorded, {store.hits} reused "
        f"(root {store.root})"
    )
    return 0


def _cmd_ls(arguments: argparse.Namespace) -> int:
    entries = sorted(
        _store(arguments).manifest().entries.values(),
        key=lambda entry: entry.scenario,
    )
    if not entries:
        print(f"empty corpus (root {arguments.root})")
        return 0
    width = max(len(entry.scenario) for entry in entries)
    print(
        f"{'scenario':{width}s}  {'driver':9s} {'instr':>8s} {'records':>8s} "
        f"{'raw B':>9s} {'stored B':>9s} {'ratio':>6s}  digest"
    )
    for entry in entries:
        print(
            f"{entry.scenario:{width}s}  {entry.driver:9s} "
            f"{entry.instructions:>8d} {entry.records:>8d} "
            f"{entry.raw_bytes:>9d} {entry.stored_bytes:>9d} "
            f"{entry.compression_ratio:>5.1f}x  {entry.digest[:16]}"
        )
    return 0


def _print_heal_summary(store: CorpusStore) -> None:
    """One-line view of the quarantine ledger (events.jsonl), if any."""
    summary = store.heal_summary()
    if not summary["events"]:
        return
    print(
        f"heal ledger: {summary['events']} event(s), "
        f"{summary['quarantined']} quarantined file(s) "
        f"({store.heal_log_path})"
    )
    for name, count in sorted(summary["scenarios"].items()):
        print(f"  {name}: {count} event(s)")


def _cmd_verify(arguments: argparse.Namespace) -> int:
    store = _store(arguments)
    entries = len(store.manifest().entries)
    if arguments.repair:
        problems, actions = store.repair()
        for problem, action in zip(problems, actions):
            print(f"FAIL {problem}", file=sys.stderr)
            print(f"HEAL {action}", file=sys.stderr)
        remaining = store.verify()
        if remaining:
            for problem in remaining:
                print(f"FAIL (unrepaired) {problem}", file=sys.stderr)
            return 1
        print(
            f"ok: {len(problems)} problem(s) healed, "
            f"{len(store.manifest().entries)} entries verified "
            f"(quarantine: {store.quarantine_dir})"
        )
        _print_heal_summary(store)
        return 0
    problems = store.verify()
    if problems:
        for problem in problems:
            print(f"FAIL {problem}", file=sys.stderr)
        print(
            f"{len(problems)} problem(s) across {entries} entries "
            f"(rerun with --repair to self-heal)",
            file=sys.stderr,
        )
        _print_heal_summary(store)
        return 1
    print(f"ok: {entries} entries, every object hash verified")
    _print_heal_summary(store)
    return 0


def _cmd_gc(arguments: argparse.Namespace) -> int:
    store = _store(arguments)
    removed = store.gc(keep_days=arguments.keep_days)
    for item in removed:
        print(f"removed {item}")
    print(
        f"{len(removed)} item(s) removed, "
        f"{store.reclaimed_bytes} B reclaimed"
    )
    return 0


def _cmd_pack(arguments: argparse.Namespace) -> int:
    from repro.corpus.packs import write_pack

    path, identifier, count = write_pack(
        _store(arguments), out=arguments.out, names=arguments.scenario
    )
    print(f"packed {count} object(s) -> {path}")
    print(f"pack id {identifier}")
    return 0


def _cmd_unpack(arguments: argparse.Namespace) -> int:
    from repro.corpus.packs import unpack, verify_pack

    problems = verify_pack(arguments.pack)
    if problems:
        for problem in problems:
            print(f"FAIL {problem}", file=sys.stderr)
        return 1
    installed, skipped = unpack(arguments.pack, _store(arguments))
    for digest in installed:
        print(f"installed {digest[:16]}")
    print(
        f"{len(installed)} object(s) installed, {len(skipped)} already "
        f"present (root {arguments.root})"
    )
    return 0


def _cmd_key(arguments: argparse.Namespace) -> int:
    print(registry_fingerprint())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.corpus",
        description="Build, inspect and verify the content-addressed "
        "trace corpus.",
    )
    parser.add_argument(
        "--root",
        default=os.environ.get(ENV_ROOT, DEFAULT_ROOT),
        help=f"store root (default: ${ENV_ROOT} or {DEFAULT_ROOT})",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser(
        "build", help="record any registry mixes missing from the store"
    )
    build.add_argument(
        "--scenario", action="append", metavar="NAME",
        help="registry mix to build (repeatable; default: all "
        f"{len(CORPUS)} mixes)",
    )
    build.add_argument(
        "--instructions", type=int, default=None,
        help="override every spec's trace length",
    )

    commands.add_parser("ls", help="list manifest entries")
    verify = commands.add_parser(
        "verify", help="re-hash objects against the manifest"
    )
    verify.add_argument(
        "--repair", action="store_true",
        help="self-heal: quarantine damaged objects and re-record them "
        "from their manifest-stored specs",
    )
    gc = commands.add_parser(
        "gc",
        help="remove unreferenced objects and old quarantined damage",
    )
    from repro.corpus.store import QUARANTINE_KEEP_DAYS

    gc.add_argument(
        "--keep-days", type=float, default=QUARANTINE_KEEP_DAYS,
        metavar="DAYS",
        help="keep quarantined damage younger than DAYS for diagnosis "
        f"(default: {QUARANTINE_KEEP_DAYS:g}; the events.jsonl ledger "
        "is always kept)",
    )
    commands.add_parser(
        "key", help="print the registry fingerprint (CI cache key)"
    )
    pack = commands.add_parser(
        "pack",
        help="frame corpus objects into one .pack container",
    )
    pack.add_argument(
        "--scenario", action="append", metavar="NAME",
        help="scenario to include (repeatable; default: every recorded "
        "object)",
    )
    pack.add_argument(
        "--out", default=None, metavar="PATH",
        help="output file (default: <root>/packs/<pack id>.pack)",
    )
    unpack = commands.add_parser(
        "unpack",
        help="verify a pack and install its objects + bindings",
    )
    unpack.add_argument("pack", help="pack file to install")

    arguments = parser.parse_args(argv)
    handler = {
        "build": _cmd_build,
        "ls": _cmd_ls,
        "verify": _cmd_verify,
        "gc": _cmd_gc,
        "key": _cmd_key,
        "pack": _cmd_pack,
        "unpack": _cmd_unpack,
    }[arguments.command]
    try:
        return handler(arguments)
    except (TraceFormatError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyError as error:
        parser.error(str(error.args[0]) if error.args else str(error))
        return 2  # unreachable; parser.error exits


if __name__ == "__main__":
    sys.exit(main())
