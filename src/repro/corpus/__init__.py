"""Content-addressed corpus of recorded traces (the figures' pantry).

``repro.traces`` made workloads first-class artifacts; this package
makes them *shared* artifacts: a content-addressed on-disk store
(sha256 of the canonical CALTRC01 stream names each compressed CALTRC02
object) with a JSON manifest binding scenario-spec fingerprints to
objects.  Experiment sections — the trace cross-checks, the multi-core
contention study, and the Figure 4/10/11 sweeps — resolve their
workloads through :class:`CorpusStore` (recording on first use,
replaying thereafter), so repeated runner invocations and CI reuse one
recorded corpus instead of regenerating per figure.

``python -m repro.corpus build|verify|gc|ls|key`` is the CLI.
"""

from repro.corpus.manifest import (
    Manifest,
    ManifestEntry,
    load_manifest,
    save_manifest,
)
from repro.corpus.store import (
    DEFAULT_ROOT,
    ENV_ROOT,
    CorpusObject,
    CorpusStore,
    canonical_digest,
    default_store,
    figure_spec,
    registry_fingerprint,
    spec_fingerprint,
)

__all__ = [
    "CorpusObject",
    "CorpusStore",
    "DEFAULT_ROOT",
    "ENV_ROOT",
    "Manifest",
    "ManifestEntry",
    "canonical_digest",
    "default_store",
    "figure_spec",
    "load_manifest",
    "registry_fingerprint",
    "save_manifest",
    "spec_fingerprint",
]
