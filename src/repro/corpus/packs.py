"""Pack files: many corpus objects framed into one container.

A corpus of small compressed trace objects is awkward to distribute —
dozens of files, one HTTP round-trip each.  A *pack* bundles any subset
of a store's objects (their on-disk CALTRC02 bytes, verbatim) behind a
single index, so a whole benchmark corpus ships as one download and
unpacks into a byte-identical store.

On-disk layout (``CALPACK1``)::

    8 bytes   magic  b"CALPACK1"
    4 bytes   <I     index length
    N bytes   index JSON (sorted keys):
                pack_version: 1
                objects: [ {entry: <ManifestEntry dict>,
                            offset, stored_bytes}, ... ]
    ...       concatenated object bytes, in index order; ``offset`` is
              relative to the end of the index

The index carries each member's full manifest entry, so unpacking
restores both the object file *and* its fingerprint binding — a pack is
a self-contained corpus fragment, not just bytes.  Packs are
content-addressed exactly like objects: the **pack id** is the sha256
of the pack file's bytes, and the default output name is
``<store root>/packs/<id>.pack`` (what ``repro.serve`` exposes as
``GET /packs/<id>``).

Member identity is the existing canonical-stream digest, so
``verify_pack`` can prove a pack's payload byte-equivalent to the
objects it was built from without consulting any store.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from dataclasses import dataclass
from typing import BinaryIO

from repro.corpus.manifest import ManifestEntry, manifest_lock, save_manifest
from repro.traces.format import TraceFormatError

#: Container magic; bump the trailing digit on layout changes.
PACK_MAGIC = b"CALPACK1"

#: Index schema version inside the container.
PACK_VERSION = 1

#: Subdirectory (under a store root) holding named pack files.
PACKS_DIR = "packs"

#: Pack filename extension.
PACK_SUFFIX = ".pack"

_LEN = struct.Struct("<I")


@dataclass(frozen=True)
class PackMember:
    """One object inside a pack: its manifest entry plus frame location."""

    entry: ManifestEntry
    offset: int  # relative to the end of the index
    stored_bytes: int

    def to_dict(self) -> dict:
        return {
            "entry": self.entry.to_dict(),
            "offset": self.offset,
            "stored_bytes": self.stored_bytes,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "PackMember":
        return cls(
            entry=ManifestEntry.from_dict(document["entry"]),
            offset=document["offset"],
            stored_bytes=document["stored_bytes"],
        )


@dataclass(frozen=True)
class PackInfo:
    """A parsed pack: members plus the payload's file offset."""

    path: str
    members: tuple[PackMember, ...]
    payload_start: int  # absolute file offset of the first member

    @property
    def stored_bytes(self) -> int:
        return sum(member.stored_bytes for member in self.members)


def pack_id(path: str) -> str:
    """The pack's content address: sha256 over the whole file."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def packs_dir(root: str) -> str:
    """The store's pack directory (``<root>/packs``)."""
    return os.path.join(root, PACKS_DIR)


def pack_path(root: str, identifier: str) -> str:
    return os.path.join(packs_dir(root), f"{identifier}{PACK_SUFFIX}")


def write_pack(store, out: str | None = None, names: list[str] | None = None):
    """Frame a store's objects (all, or by scenario name) into one pack.

    Every selected entry's on-disk object is copied verbatim; a missing
    or scenario-unknown selection raises before any bytes are written.
    ``out`` may be a target path or ``None`` for the content-addressed
    default ``<root>/packs/<pack id>.pack``.  Returns
    ``(path, pack id, member count)``.
    """
    manifest = store.manifest()
    entries = sorted(
        manifest.entries.values(), key=lambda entry: entry.scenario
    )
    if names:
        by_scenario: dict[str, list[ManifestEntry]] = {}
        for entry in entries:
            by_scenario.setdefault(entry.scenario, []).append(entry)
        unknown = sorted(set(names) - set(by_scenario))
        if unknown:
            raise KeyError(
                f"scenario(s) not in this corpus: {', '.join(unknown)}; "
                f"recorded: {', '.join(sorted(by_scenario)) or '<none>'}"
            )
        entries = [
            entry for name in sorted(set(names)) for entry in by_scenario[name]
        ]
    if not entries:
        raise ValueError(f"nothing to pack (empty corpus at {store.root})")

    members = []
    offset = 0
    for entry in entries:
        path = store.object_path(entry.digest)
        try:
            stored = os.path.getsize(path)
        except OSError:
            raise FileNotFoundError(
                f"object {entry.digest[:12]}… for {entry.scenario} is "
                f"missing ({path}); run `corpus verify --repair` first"
            ) from None
        members.append(PackMember(entry=entry, offset=offset, stored_bytes=stored))
        offset += stored

    index_bytes = json.dumps(
        {
            "pack_version": PACK_VERSION,
            "objects": [member.to_dict() for member in members],
        },
        sort_keys=True,
    ).encode("utf-8")

    target_dir = os.path.dirname(out) if out else packs_dir(store.root)
    os.makedirs(target_dir or ".", exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=target_dir or ".", suffix=".packing")
    digest = hashlib.sha256()
    try:
        with os.fdopen(fd, "wb") as handle:

            def emit(data: bytes) -> None:
                handle.write(data)
                digest.update(data)

            emit(PACK_MAGIC)
            emit(_LEN.pack(len(index_bytes)))
            emit(index_bytes)
            for member in members:
                with open(store.object_path(member.entry.digest), "rb") as src:
                    for chunk in iter(lambda: src.read(1 << 20), b""):
                        emit(chunk)
        identifier = digest.hexdigest()
        path = out or pack_path(store.root, identifier)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.remove(temp_path)
        except OSError:
            pass
        raise
    return path, identifier, len(members)


def read_pack(path: str) -> PackInfo:
    """Parse a pack's index (payload bytes are not read)."""
    with open(path, "rb") as handle:
        magic = handle.read(len(PACK_MAGIC))
        if magic != PACK_MAGIC:
            raise TraceFormatError(
                f"not a pack file (magic {magic!r}, expected {PACK_MAGIC!r})",
                path=path,
                offset=0,
            )
        raw_length = handle.read(_LEN.size)
        if len(raw_length) != _LEN.size:
            raise TraceFormatError(
                "truncated pack: index length missing",
                path=path,
                offset=len(PACK_MAGIC),
            )
        (index_length,) = _LEN.unpack(raw_length)
        index_bytes = handle.read(index_length)
        if len(index_bytes) != index_length:
            raise TraceFormatError(
                f"truncated pack: index is {len(index_bytes)} of "
                f"{index_length} bytes",
                path=path,
                offset=len(PACK_MAGIC) + _LEN.size,
            )
        try:
            document = json.loads(index_bytes.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise TraceFormatError(
                f"pack index is not valid JSON: {error}",
                path=path,
                offset=len(PACK_MAGIC) + _LEN.size,
            ) from None
        version = document.get("pack_version")
        if version != PACK_VERSION:
            raise TraceFormatError(
                f"unsupported pack version {version!r} "
                f"(this build reads {PACK_VERSION})",
                path=path,
            )
        members = tuple(
            PackMember.from_dict(item) for item in document.get("objects", [])
        )
        payload_start = len(PACK_MAGIC) + _LEN.size + index_length
        expected = payload_start + sum(m.stored_bytes for m in members)
        actual = os.path.getsize(path)
        if actual != expected:
            raise TraceFormatError(
                f"pack payload is {actual - payload_start} bytes, index "
                f"promises {expected - payload_start}",
                path=path,
                offset=payload_start,
            )
    return PackInfo(path=path, members=members, payload_start=payload_start)


def _copy_member(
    pack: BinaryIO, info: PackInfo, member: PackMember, target: BinaryIO
) -> None:
    pack.seek(info.payload_start + member.offset)
    remaining = member.stored_bytes
    while remaining:
        chunk = pack.read(min(remaining, 1 << 20))
        if not chunk:
            raise TraceFormatError(
                f"pack payload truncated inside "
                f"{member.entry.digest[:12]}…",
                path=info.path,
            )
        target.write(chunk)
        remaining -= len(chunk)


def unpack(path: str, store) -> tuple[list[str], list[str]]:
    """Install every pack member into ``store``.

    Object bytes land under ``objects/`` (atomic temp + rename; an
    already-present digest is not rewritten) and each member's manifest
    entry is merged under the store lock — after unpacking, ``ensure``
    of any member's spec is a pure corpus hit.  Every written object is
    digest-verified against its entry (via the store's canonical-stream
    hasher) before its binding lands; a corrupt member raises and
    installs nothing further.  Returns ``(installed, skipped)`` digests.
    """
    from repro.corpus.store import canonical_digest

    info = read_pack(path)
    installed: list[str] = []
    skipped: list[str] = []
    with open(path, "rb") as pack:
        for member in info.members:
            target = store.object_path(member.entry.digest)
            if os.path.exists(target):
                skipped.append(member.entry.digest)
                continue
            os.makedirs(os.path.dirname(target), exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                dir=os.path.dirname(target), suffix=".recording"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    _copy_member(pack, info, member, handle)
                digest, raw_bytes, _footer = canonical_digest(temp_path)
                if digest != member.entry.digest:
                    raise TraceFormatError(
                        f"pack member for {member.entry.scenario} hashes to "
                        f"{digest[:12]}…, index promises "
                        f"{member.entry.digest[:12]}…",
                        path=path,
                    )
                if raw_bytes != member.entry.raw_bytes:
                    raise TraceFormatError(
                        f"pack member for {member.entry.scenario}: canonical "
                        f"length {raw_bytes} != entry {member.entry.raw_bytes}",
                        path=path,
                    )
                os.replace(temp_path, target)
            except BaseException:
                try:
                    os.remove(temp_path)
                except OSError:
                    pass
                raise
            installed.append(member.entry.digest)
    with manifest_lock(store.root):
        manifest = store.manifest()
        for member in info.members:
            manifest.put(member.entry)
        save_manifest(manifest, store.manifest_path)
    return installed, skipped


def verify_pack(path: str) -> list[str]:
    """Re-hash every member's canonical stream; returns problems."""
    from io import BytesIO

    from repro.corpus.store import canonical_digest

    problems: list[str] = []
    info = read_pack(path)
    with open(path, "rb") as pack:
        for member in info.members:
            buffer = BytesIO()
            try:
                _copy_member(pack, info, member, buffer)
                buffer.seek(0)
                digest, _raw, _footer = canonical_digest(buffer)
            except (TraceFormatError, ValueError, OSError) as error:
                problems.append(f"{member.entry.scenario}: unreadable: {error}")
                continue
            if digest != member.entry.digest:
                problems.append(
                    f"{member.entry.scenario}: member hashes to "
                    f"{digest[:12]}…, index promises "
                    f"{member.entry.digest[:12]}…"
                )
    return problems


def list_packs(root: str) -> list[tuple[str, str]]:
    """``(pack id, path)`` for every pack under ``<root>/packs``."""
    directory = packs_dir(root)
    if not os.path.isdir(directory):
        return []
    found = []
    for name in sorted(os.listdir(directory)):
        if name.endswith(PACK_SUFFIX):
            found.append((name[: -len(PACK_SUFFIX)], os.path.join(directory, name)))
    return found
