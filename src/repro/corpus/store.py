"""Content-addressed trace corpus: record once, replay everywhere.

The store is a directory::

    <root>/manifest.json            fingerprints → object metadata
    <root>/objects/<aa>/<sha256>.trace   CALTRC02 compressed traces

Identity is two-level:

* the **spec fingerprint** — sha256 over the scenario-spec document and
  the recording geometry — keys the manifest: same workload definition,
  same fingerprint, across machines and sessions;
* the **content digest** — sha256 of the trace's *canonical CALTRC01
  byte stream* (the v1 serialisation of header, records and footer) —
  names the object file.  Hashing the canonical stream rather than the
  on-disk bytes makes identity independent of the storage codec: a
  recompressed or transcoded object keeps its name, and ``verify`` can
  check a CALTRC02 file against the digest its v1 twin would have.

:meth:`CorpusStore.ensure` is the whole workflow: manifest hit → return
the object path; miss → record the spec live (through its driver),
store compressed, bind the fingerprint.  Recording is deterministic, so
concurrent builders racing on the same spec converge on byte-identical
objects.  Figure sweeps resolve their workloads through
:meth:`CorpusStore.slowdown` (see :mod:`repro.analysis.suite`), which
replays corpus traces instead of re-synthesising per figure.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from dataclasses import dataclass

from repro.memory.hierarchy import WESTMERE, HierarchyConfig
from repro.telemetry.runtime import active as telemetry_active
from repro.telemetry.runtime import span as telemetry_span
from repro.traces.format import EV_END, MAGIC, RECORD, TraceReader
from repro.traces.recorder import _geometry_dict, record_spec
from repro.traces.registry import CORPUS, TraceScenarioSpec, policy_to_str
from repro.traces.replayer import replay_timing
from repro.workloads.generator import RunResult, Scenario
from repro.workloads.specs import BenchmarkProfile

from repro.corpus.manifest import (
    MANIFEST_NAME,
    Manifest,
    ManifestEntry,
    load_manifest,
    manifest_lock,
    save_manifest,
)
from repro.traces.format import TraceFormatError, TraceIntegrityError

#: Environment override for the default store root.
ENV_ROOT = "REPRO_CORPUS_DIR"

#: Default store root (relative to the invoking process's cwd, like the
#: runner's EXPERIMENTS.md output); CI caches this directory.
DEFAULT_ROOT = ".repro-corpus"

#: Bump when the fingerprint payload changes shape.
FINGERPRINT_VERSION = 1

#: ``gc`` reaps unreferenced files only after this age: a younger
#: ``.recording`` may be a live concurrent builder's temp file, and a
#: younger unreferenced ``.trace`` may be a just-published object whose
#: builder has not yet written its manifest entry.
STALE_RECORDING_SECONDS = 3600

#: Subdirectory (under the store root) receiving damaged bytes: bad
#: objects and corrupt manifests are moved here, never destroyed, so a
#: failure is diagnosable after the store healed itself.
QUARANTINE_DIR = "quarantine"

#: Append-only JSONL ledger of self-heal events, inside the quarantine
#: directory.  Each line: scenario, digest, reason, action.
HEAL_LOG_NAME = "events.jsonl"

#: ``gc`` keeps quarantined damage younger than this many days for
#: post-mortem diagnosis; older blobs are reclaimed.  The events.jsonl
#: ledger itself is never swept — it is the record of *why* bytes were
#: quarantined, and it stays useful after the bytes are gone.
QUARANTINE_KEEP_DAYS = 7.0

#: Exceptions that mean "the bytes under this consumer are damaged" —
#: the self-heal triggers.  Everything else (bugs, BaseException) still
#: propagates.
DAMAGE_ERRORS = (TraceFormatError, TraceIntegrityError, OSError, ValueError)


def spec_fingerprint(
    spec: TraceScenarioSpec, config: HierarchyConfig = WESTMERE
) -> str:
    """Stable identity of one recordable workload.

    Covers everything that determines the logical record stream: the
    full spec document (profile, policy, seeds, lengths, driver) and the
    recording geometry.  Deliberately excludes the storage codec — a
    format migration does not orphan the corpus.
    """
    payload = {
        "fingerprint_version": FINGERPRINT_VERSION,
        "spec": spec.to_dict(),
        "geometry": _geometry_dict(config),
    }
    canonical = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


def canonical_digest(source) -> tuple[str, int, dict]:
    """sha256, length and footer of a trace's canonical CALTRC01 stream.

    Streams the file (any container version) and hashes the exact bytes
    its v1 serialisation would hold — header ``format`` normalised to
    ``CALTRC01`` so a transcoded twin hashes identically.  The footer is
    returned as well (the stream was fully drained to hash it, so
    callers wanting record counts need no second pass).
    """
    digest = hashlib.sha256()
    length = 0

    def feed(data: bytes) -> None:
        nonlocal length
        digest.update(data)
        length += len(data)

    with TraceReader(source) as reader:
        header = dict(reader.header)
        if "format" in header:
            header["format"] = MAGIC.decode("ascii")
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        feed(MAGIC)
        feed(struct.pack("<I", len(header_bytes)))
        feed(header_bytes)
        pack = RECORD.pack
        for kind, address, arg in reader.records():
            feed(pack(kind, address, arg))
        footer = reader.read_footer()
        footer_bytes = json.dumps(footer, sort_keys=True).encode("utf-8")
        feed(pack(EV_END, 0, len(footer_bytes)))
        feed(footer_bytes)
    return digest.hexdigest(), length, footer


@dataclass(frozen=True)
class CorpusObject:
    """Outcome of one :meth:`CorpusStore.ensure` resolution."""

    path: str
    entry: ManifestEntry
    built: bool  # False: manifest hit, no recording happened


class CorpusStore:
    """A content-addressed on-disk corpus of recorded traces.

    The store is *self-healing*: every read path (``ensure`` hits,
    ``run_result`` replays, ``verify --repair``) checks the bytes it is
    about to trust, and on any damage — digest mismatch, truncation,
    missing file, unreadable container, corrupt manifest — quarantines
    the bad bytes under ``<root>/quarantine/``, drops the manifest
    binding and re-records from the deterministic spec.  The spec, not
    the stored bytes, is the source of truth; healing therefore always
    converges on an object byte-identical to an undamaged build.
    ``verify_reads=False`` opts a handle out of read-time hashing (perf
    harnesses measuring pure replay).
    """

    def __init__(self, root: str, verify_reads: bool = True):
        self.root = root
        self.objects_dir = os.path.join(root, "objects")
        self.manifest_path = os.path.join(root, MANIFEST_NAME)
        self.quarantine_dir = os.path.join(root, QUARANTINE_DIR)
        self.heal_log_path = os.path.join(self.quarantine_dir, HEAL_LOG_NAME)
        self.verify_reads = verify_reads
        #: Resolution counters for this store instance (reporting; the
        #: acceptance invariant "second run records nothing" is
        #: ``built == 0``).  ``healed`` counts self-heal repairs.
        self.hits = 0
        self.built = 0
        self.healed = 0
        #: Bytes freed by the most recent :meth:`gc` call.
        self.reclaimed_bytes = 0
        #: Digests this handle already re-hashed successfully; a sweep
        #: replaying one baseline object dozens of times pays the hash
        #: once (replay-time damage is still caught by ``run_result``).
        self._verified: set[str] = set()

    # -- paths ---------------------------------------------------------------

    def object_path(self, digest: str) -> str:
        return os.path.join(self.objects_dir, digest[:2], f"{digest}.trace")

    def manifest(self) -> Manifest:
        """The manifest — healing a corrupt/unreadable manifest file.

        A manifest that fails to parse is quarantined (every binding is
        lost, but the object files stay; re-``ensure`` rebuilds bindings
        by re-recording, converging on the identical objects) rather
        than wedging every consumer with a ``ValueError``.
        """
        try:
            return load_manifest(self.manifest_path)
        except ValueError as error:
            quarantined = self._quarantine_file(
                self.manifest_path, "manifest.corrupt.json"
            )
            self._log_heal(
                scenario="<manifest>",
                digest="",
                reason=str(error),
                action=f"quarantined manifest to {quarantined}; "
                "starting empty (bindings rebuild on demand)",
            )
            return Manifest()

    # -- the core workflow ---------------------------------------------------

    def ensure(
        self,
        spec: TraceScenarioSpec,
        config: HierarchyConfig = WESTMERE,
    ) -> CorpusObject:
        """Resolve a spec to a recorded trace, building on first use.

        A manifest hit is trusted only after the on-disk object
        re-hashes to the digest the manifest promises (unless
        ``verify_reads`` is off, where only existence is checked); any
        damage is quarantined and healed by re-recording.
        """
        fingerprint = spec_fingerprint(spec, config)
        entry = self.manifest().get(fingerprint)
        if entry is not None:
            path = self.object_path(entry.digest)
            problem = self._object_problem(path, entry)
            if problem is None:
                self.hits += 1
                tel = telemetry_active()
                if tel is not None:
                    tel.inc("corpus_resolutions_total", outcome="hit")
                return CorpusObject(path=path, entry=entry, built=False)
            self._heal(entry, problem)
        return self._build(fingerprint, spec, config)

    # -- self-healing --------------------------------------------------------

    def _object_problem(
        self, path: str, entry: ManifestEntry, force: bool = False
    ) -> str | None:
        """Why this object cannot be trusted, or ``None`` if it can.

        ``force`` re-hashes even when read verification is off or the
        digest was already verified by this handle (the bulk
        verify/repair paths always want fresh evidence).
        """
        if not os.path.exists(path):
            return f"object {entry.digest[:12]}… missing ({path})"
        if not force and (
            not self.verify_reads or entry.digest in self._verified
        ):
            return None
        try:
            digest, raw_bytes, _footer = canonical_digest(path)
        except DAMAGE_ERRORS as error:
            return f"object {entry.digest[:12]}… unreadable: {error}"
        if digest != entry.digest:
            return (
                f"digest mismatch — manifest {entry.digest[:12]}…, on-disk "
                f"stream hashes to {digest[:12]}…"
            )
        if raw_bytes != entry.raw_bytes:
            return (
                f"canonical length {raw_bytes} != manifest {entry.raw_bytes}"
            )
        self._verified.add(entry.digest)
        return None

    def _quarantine_file(self, path: str, name: str) -> str | None:
        """Move ``path`` into the quarantine dir; returns the new path."""
        if not os.path.exists(path):
            return None
        os.makedirs(self.quarantine_dir, exist_ok=True)
        target = os.path.join(self.quarantine_dir, name)
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = os.path.join(self.quarantine_dir, f"{name}.{suffix}")
        try:
            os.replace(path, target)
        except OSError:
            return None  # deleted under us; nothing left to preserve
        tel = telemetry_active()
        if tel is not None:
            tel.inc("corpus_quarantined_files_total")
        return target

    def _log_heal(
        self, scenario: str, digest: str, reason: str, action: str
    ) -> None:
        """Append one event to the heal ledger (single atomic write)."""
        os.makedirs(self.quarantine_dir, exist_ok=True)
        line = json.dumps(
            {
                "scenario": scenario,
                "digest": digest,
                "reason": reason,
                "action": action,
            },
            sort_keys=True,
        )
        with open(self.heal_log_path, "a") as handle:
            handle.write(line + "\n")
        self.healed += 1
        tel = telemetry_active()
        if tel is not None:
            tel.inc("corpus_heal_events_total")

    def heal_log_size(self) -> int:
        """Current byte length of the heal ledger (a resumable cursor)."""
        try:
            return os.path.getsize(self.heal_log_path)
        except OSError:
            return 0

    def heal_events(self, since: int = 0) -> list[dict]:
        """Heal-ledger events appended after byte offset ``since``."""
        try:
            with open(self.heal_log_path) as handle:
                handle.seek(since)
                return [
                    json.loads(line)
                    for line in handle
                    if line.strip()
                ]
        except OSError:
            return []

    def heal_summary(self) -> dict:
        """Summary counts over the whole heal ledger.

        Returns ``{"events", "quarantined", "scenarios"}`` — total
        ledger lines, how many preserved bytes in quarantine (vs. just
        dropping a binding), and per-scenario event counts.  An absent
        ledger summarises to zero events.
        """
        events = self.heal_events()
        quarantined = sum(
            1
            for event in events
            if event.get("action", "").startswith("quarantined")
        )
        scenarios: dict[str, int] = {}
        for event in events:
            name = event.get("scenario", "?")
            scenarios[name] = scenarios.get(name, 0) + 1
        return {
            "events": len(events),
            "quarantined": quarantined,
            "scenarios": scenarios,
        }

    def _heal(self, entry: ManifestEntry, reason: str) -> None:
        """Quarantine a damaged object and drop its manifest binding."""
        path = self.object_path(entry.digest)
        quarantined = self._quarantine_file(path, f"{entry.digest}.trace")
        with manifest_lock(self.root):
            manifest = self.manifest()
            current = manifest.get(entry.fingerprint)
            if current is not None and current.digest == entry.digest:
                manifest.entries.pop(entry.fingerprint)
                save_manifest(manifest, self.manifest_path)
        self._log_heal(
            scenario=entry.scenario,
            digest=entry.digest,
            reason=reason,
            action=(
                f"quarantined to {quarantined}; entry dropped"
                if quarantined
                else "entry dropped (no bytes left to quarantine)"
            ),
        )

    def _build(
        self,
        fingerprint: str,
        spec: TraceScenarioSpec,
        config: HierarchyConfig,
    ) -> CorpusObject:
        os.makedirs(self.objects_dir, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(
            dir=self.objects_dir, suffix=".recording"
        )
        os.close(fd)
        try:
            with telemetry_span("corpus/record", scenario=spec.name) as tspan:
                record_spec(spec, temp_path, config=config, compress=True)
                # One decode pass over the fresh recording.  (A hashing
                # tee inside the writer could fold this into the
                # recording pass; the cold path runs once per workload
                # ever, so the extra read is accepted for the recorder's
                # simplicity.)
                digest, raw_bytes, footer = canonical_digest(temp_path)
                stored_bytes = os.path.getsize(temp_path)
                records = footer.get("records", 0)
                tspan.set("records", records)
                tspan.set("stored_bytes", stored_bytes)
            path = self.object_path(digest)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            # Atomic publish; racing builders of a deterministic spec
            # produce byte-identical objects, so last-write-wins is safe.
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise
        entry = ManifestEntry(
            fingerprint=fingerprint,
            scenario=spec.name,
            driver=spec.driver,
            instructions=spec.instructions,
            digest=digest,
            records=records,
            raw_bytes=raw_bytes,
            stored_bytes=stored_bytes,
            spec=spec.to_dict(),
        )
        with manifest_lock(self.root):
            manifest = self.manifest()  # re-read under the lock: merge
            manifest.put(entry)
            save_manifest(manifest, self.manifest_path)
        self.built += 1
        self._verified.add(digest)  # we hashed exactly what we stored
        tel = telemetry_active()
        if tel is not None:
            tel.inc("corpus_resolutions_total", outcome="recorded")
        return CorpusObject(path=path, entry=entry, built=True)

    # -- replay-side consumers ----------------------------------------------

    def run_result(
        self,
        spec: TraceScenarioSpec,
        config: HierarchyConfig = WESTMERE,
    ) -> RunResult:
        """The spec's live statistics, from the corpus (replay-verified).

        Damage surfacing only at replay time — an object deleted or
        truncated after ``ensure`` verified it, or stats contradicting
        the footer — heals the same way the ensure path does: the bad
        bytes are quarantined, the binding dropped, the spec re-recorded
        and replayed once more.  A second failure propagates (the
        problem is then not the bytes).
        """
        resolved = self.ensure(spec, config)
        try:
            return replay_timing(resolved.path)
        except DAMAGE_ERRORS as error:
            self._verified.discard(resolved.entry.digest)
            self._heal(resolved.entry, f"replay failed: {error}")
            fingerprint = spec_fingerprint(spec, config)
            rebuilt = self._build(fingerprint, spec, config)
            return replay_timing(rebuilt.path)

    def slowdown(
        self,
        profile: BenchmarkProfile,
        scenario: Scenario,
        instructions: int,
        baseline_config: HierarchyConfig = WESTMERE,
        variant_config: HierarchyConfig | None = None,
    ) -> float:
        """Corpus-resolved twin of :func:`repro.workloads.generator.slowdown`.

        Both the unprotected baseline and the scenario variant resolve
        through the store; replay is bit-identical to the live runs, so
        the returned figure quantity equals the live computation exactly
        — while repeated invocations (and other figures sharing the
        baseline) replay instead of re-synthesising.
        """
        base = self.run_result(figure_spec(profile, Scenario.baseline(), instructions))
        variant = self.run_result(figure_spec(profile, scenario, instructions))
        base_cycles = base.cycles(baseline_config, profile)
        variant_cycles = variant.cycles(
            variant_config or baseline_config, profile
        )
        return variant_cycles / base_cycles - 1.0

    # -- maintenance ---------------------------------------------------------

    def build_registry(
        self,
        names: list[str] | None = None,
        instructions: int | None = None,
        config: HierarchyConfig = WESTMERE,
    ) -> list[CorpusObject]:
        """Ensure every (named) registry mix is recorded; returns outcomes."""
        outcomes = []
        for name in names or sorted(CORPUS):
            spec = CORPUS[name]
            if instructions is not None:
                spec = spec.scaled(instructions)
            outcomes.append(self.ensure(spec, config))
        return outcomes

    def verify(self) -> list[str]:
        """Re-hash every referenced object; returns problem descriptions."""
        problems: list[str] = []
        tel = telemetry_active()
        for _fingerprint, entry in sorted(self.manifest().entries.items()):
            problem = self._object_problem(
                self.object_path(entry.digest), entry, force=True
            )
            if tel is not None:
                tel.inc(
                    "corpus_verifications_total",
                    outcome="damaged" if problem is not None else "ok",
                )
            if problem is not None:
                problems.append(f"{entry.scenario}: {problem}")
        return problems

    def _entry_spec(self, entry: ManifestEntry) -> TraceScenarioSpec | None:
        """The recorded spec document, decoded — or ``None`` if absent
        or itself damaged (old manifests, injected orphans)."""
        if not entry.spec:
            return None
        try:
            return TraceScenarioSpec.from_dict(entry.spec)
        except Exception:
            return None

    def repair(
        self, config: HierarchyConfig = WESTMERE
    ) -> tuple[list[str], list[str]]:
        """Bulk self-heal: every damaged entry is quarantined and, when
        its manifest-recorded spec still fingerprints to the entry,
        re-recorded; unrecoverable entries (no spec, foreign geometry)
        are dropped with a diagnostic.  Returns ``(problems, actions)``
        — one action per problem.
        """
        problems: list[str] = []
        actions: list[str] = []
        for fingerprint, entry in sorted(self.manifest().entries.items()):
            problem = self._object_problem(
                self.object_path(entry.digest), entry, force=True
            )
            if problem is None:
                continue
            problems.append(f"{entry.scenario}: {problem}")
            self._verified.discard(entry.digest)
            self._heal(entry, problem)
            spec = self._entry_spec(entry)
            if spec is None:
                actions.append(
                    f"{entry.scenario}: entry dropped (no recorded spec — "
                    f"unrecoverable; re-record from the registry)"
                )
                continue
            if spec_fingerprint(spec, config) != fingerprint:
                actions.append(
                    f"{entry.scenario}: entry dropped (spec fingerprints "
                    f"differently under this geometry — re-ensure with the "
                    f"recording config)"
                )
                continue
            rebuilt = self._build(fingerprint, spec, config)
            if rebuilt.entry.digest == entry.digest:
                actions.append(
                    f"{entry.scenario}: re-recorded, digest "
                    f"{entry.digest[:12]}… restored byte-identically"
                )
            else:
                actions.append(
                    f"{entry.scenario}: re-recorded as "
                    f"{rebuilt.entry.digest[:12]}… (the manifest digest "
                    f"itself was damaged)"
                )
        return problems, actions

    def gc(self, keep_days: float = QUARANTINE_KEEP_DAYS) -> list[str]:
        """Remove unreferenced objects, stale entries and old quarantine.

        Quarantined blobs (damaged objects and corrupt manifests parked
        under ``<root>/quarantine/`` by the self-heal paths) are swept
        once older than ``keep_days`` — young enough damage stays
        inspectable, but a long-lived store no longer accumulates every
        corruption it ever survived.  The heal ledger (events.jsonl) is
        always kept.  Bytes freed by this call (objects *and*
        quarantine) are reported in :attr:`reclaimed_bytes`.
        """
        removed: list[str] = []
        self.reclaimed_bytes = 0
        with manifest_lock(self.root):
            manifest = self.manifest()
            stale = [
                fingerprint
                for fingerprint, entry in manifest.entries.items()
                if not os.path.exists(self.object_path(entry.digest))
            ]
            for fingerprint in stale:
                entry = manifest.entries.pop(fingerprint)
                removed.append(f"entry {entry.scenario} ({fingerprint[:12]}…)")
            if stale:
                save_manifest(manifest, self.manifest_path)
            referenced = manifest.digests()
        if os.path.isdir(self.objects_dir):
            import time

            stale_before = time.time() - STALE_RECORDING_SECONDS
            for dirpath, _dirnames, filenames in os.walk(self.objects_dir):
                for filename in filenames:
                    digest, ext = os.path.splitext(filename)
                    path = os.path.join(dirpath, filename)
                    if ext == ".trace" and digest in referenced:
                        continue
                    # Anything else is either a concurrent builder's
                    # artifact (an in-progress .recording, or an object
                    # published moments before its manifest entry lands)
                    # or a crash leftover; age separates the two.
                    try:
                        if os.path.getmtime(path) > stale_before:
                            continue
                        size = os.path.getsize(path)
                        os.remove(path)
                    except OSError:
                        continue  # renamed/removed mid-walk
                    removed.append(path)
                    self.reclaimed_bytes += size
        if os.path.isdir(self.quarantine_dir):
            import time

            keep_after = time.time() - keep_days * 86400.0
            for filename in sorted(os.listdir(self.quarantine_dir)):
                if filename == HEAL_LOG_NAME:
                    continue
                path = os.path.join(self.quarantine_dir, filename)
                if not os.path.isfile(path):
                    continue
                try:
                    if os.path.getmtime(path) > keep_after:
                        continue
                    size = os.path.getsize(path)
                    os.remove(path)
                except OSError:
                    continue  # swept by a concurrent gc
                removed.append(path)
                self.reclaimed_bytes += size
        return removed


def default_store() -> CorpusStore:
    """The process-wide default store (``$REPRO_CORPUS_DIR`` or
    ``./.repro-corpus``)."""
    return CorpusStore(os.environ.get(ENV_ROOT, DEFAULT_ROOT))


def figure_spec(
    profile: BenchmarkProfile, scenario: Scenario, instructions: int
) -> TraceScenarioSpec:
    """The corpus spec of one figure-sweep cell.

    Mirrors :func:`repro.workloads.generator.slowdown`'s live-run
    parameters exactly (seed 0, full warmup, default quarantine), so the
    corpus-resolved figure equals the live figure bit-for-bit.
    """
    return TraceScenarioSpec(
        name=f"fig/{profile.name}/{scenario.describe().replace(' ', '_')}"
        f"/b{scenario.binary_seed}",
        description="figure-sweep workload (corpus-resolved)",
        profile=profile,
        policy=policy_to_str(scenario.policy),
        with_cform=scenario.with_cform,
        min_bytes=scenario.min_bytes,
        max_bytes=scenario.max_bytes,
        binary_seed=scenario.binary_seed,
        instructions=instructions,
    )


def registry_fingerprint(config: HierarchyConfig = WESTMERE) -> str:
    """One combined fingerprint over the whole scenario registry.

    Changes whenever any registry spec (or the recording geometry or
    fingerprint scheme) changes — the CI cache key for the corpus
    directory.
    """
    combined = hashlib.sha256()
    for name in sorted(CORPUS):
        combined.update(spec_fingerprint(CORPUS[name], config).encode())
    return combined.hexdigest()
