"""Content-addressed trace corpus: record once, replay everywhere.

The store is a directory::

    <root>/manifest.json            fingerprints → object metadata
    <root>/objects/<aa>/<sha256>.trace   CALTRC02 compressed traces

Identity is two-level:

* the **spec fingerprint** — sha256 over the scenario-spec document and
  the recording geometry — keys the manifest: same workload definition,
  same fingerprint, across machines and sessions;
* the **content digest** — sha256 of the trace's *canonical CALTRC01
  byte stream* (the v1 serialisation of header, records and footer) —
  names the object file.  Hashing the canonical stream rather than the
  on-disk bytes makes identity independent of the storage codec: a
  recompressed or transcoded object keeps its name, and ``verify`` can
  check a CALTRC02 file against the digest its v1 twin would have.

:meth:`CorpusStore.ensure` is the whole workflow: manifest hit → return
the object path; miss → record the spec live (through its driver),
store compressed, bind the fingerprint.  Recording is deterministic, so
concurrent builders racing on the same spec converge on byte-identical
objects.  Figure sweeps resolve their workloads through
:meth:`CorpusStore.slowdown` (see :mod:`repro.analysis.suite`), which
replays corpus traces instead of re-synthesising per figure.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from dataclasses import dataclass

from repro.memory.hierarchy import WESTMERE, HierarchyConfig
from repro.traces.format import EV_END, MAGIC, RECORD, TraceReader
from repro.traces.recorder import _geometry_dict, record_spec
from repro.traces.registry import CORPUS, TraceScenarioSpec, policy_to_str
from repro.traces.replayer import replay_timing
from repro.workloads.generator import RunResult, Scenario
from repro.workloads.specs import BenchmarkProfile

from repro.corpus.manifest import (
    MANIFEST_NAME,
    Manifest,
    ManifestEntry,
    load_manifest,
    manifest_lock,
    save_manifest,
)

#: Environment override for the default store root.
ENV_ROOT = "REPRO_CORPUS_DIR"

#: Default store root (relative to the invoking process's cwd, like the
#: runner's EXPERIMENTS.md output); CI caches this directory.
DEFAULT_ROOT = ".repro-corpus"

#: Bump when the fingerprint payload changes shape.
FINGERPRINT_VERSION = 1

#: ``gc`` reaps unreferenced files only after this age: a younger
#: ``.recording`` may be a live concurrent builder's temp file, and a
#: younger unreferenced ``.trace`` may be a just-published object whose
#: builder has not yet written its manifest entry.
STALE_RECORDING_SECONDS = 3600


def spec_fingerprint(
    spec: TraceScenarioSpec, config: HierarchyConfig = WESTMERE
) -> str:
    """Stable identity of one recordable workload.

    Covers everything that determines the logical record stream: the
    full spec document (profile, policy, seeds, lengths, driver) and the
    recording geometry.  Deliberately excludes the storage codec — a
    format migration does not orphan the corpus.
    """
    payload = {
        "fingerprint_version": FINGERPRINT_VERSION,
        "spec": spec.to_dict(),
        "geometry": _geometry_dict(config),
    }
    canonical = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


def canonical_digest(source) -> tuple[str, int, dict]:
    """sha256, length and footer of a trace's canonical CALTRC01 stream.

    Streams the file (any container version) and hashes the exact bytes
    its v1 serialisation would hold — header ``format`` normalised to
    ``CALTRC01`` so a transcoded twin hashes identically.  The footer is
    returned as well (the stream was fully drained to hash it, so
    callers wanting record counts need no second pass).
    """
    digest = hashlib.sha256()
    length = 0

    def feed(data: bytes) -> None:
        nonlocal length
        digest.update(data)
        length += len(data)

    with TraceReader(source) as reader:
        header = dict(reader.header)
        if "format" in header:
            header["format"] = MAGIC.decode("ascii")
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        feed(MAGIC)
        feed(struct.pack("<I", len(header_bytes)))
        feed(header_bytes)
        pack = RECORD.pack
        for kind, address, arg in reader.records():
            feed(pack(kind, address, arg))
        footer = reader.read_footer()
        footer_bytes = json.dumps(footer, sort_keys=True).encode("utf-8")
        feed(pack(EV_END, 0, len(footer_bytes)))
        feed(footer_bytes)
    return digest.hexdigest(), length, footer


@dataclass(frozen=True)
class CorpusObject:
    """Outcome of one :meth:`CorpusStore.ensure` resolution."""

    path: str
    entry: ManifestEntry
    built: bool  # False: manifest hit, no recording happened


class CorpusStore:
    """A content-addressed on-disk corpus of recorded traces."""

    def __init__(self, root: str):
        self.root = root
        self.objects_dir = os.path.join(root, "objects")
        self.manifest_path = os.path.join(root, MANIFEST_NAME)
        #: Resolution counters for this store instance (reporting; the
        #: acceptance invariant "second run records nothing" is
        #: ``built == 0``).
        self.hits = 0
        self.built = 0

    # -- paths ---------------------------------------------------------------

    def object_path(self, digest: str) -> str:
        return os.path.join(self.objects_dir, digest[:2], f"{digest}.trace")

    def manifest(self) -> Manifest:
        return load_manifest(self.manifest_path)

    # -- the core workflow ---------------------------------------------------

    def ensure(
        self,
        spec: TraceScenarioSpec,
        config: HierarchyConfig = WESTMERE,
    ) -> CorpusObject:
        """Resolve a spec to a recorded trace, building on first use."""
        fingerprint = spec_fingerprint(spec, config)
        entry = self.manifest().get(fingerprint)
        if entry is not None:
            path = self.object_path(entry.digest)
            if os.path.exists(path):
                self.hits += 1
                return CorpusObject(path=path, entry=entry, built=False)
        return self._build(fingerprint, spec, config)

    def _build(
        self,
        fingerprint: str,
        spec: TraceScenarioSpec,
        config: HierarchyConfig,
    ) -> CorpusObject:
        os.makedirs(self.objects_dir, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(
            dir=self.objects_dir, suffix=".recording"
        )
        os.close(fd)
        try:
            record_spec(spec, temp_path, config=config, compress=True)
            # One decode pass over the fresh recording.  (A hashing tee
            # inside the writer could fold this into the recording pass;
            # the cold path runs once per workload ever, so the extra
            # read is accepted for the recorder's simplicity.)
            digest, raw_bytes, footer = canonical_digest(temp_path)
            stored_bytes = os.path.getsize(temp_path)
            records = footer.get("records", 0)
            path = self.object_path(digest)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            # Atomic publish; racing builders of a deterministic spec
            # produce byte-identical objects, so last-write-wins is safe.
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise
        entry = ManifestEntry(
            fingerprint=fingerprint,
            scenario=spec.name,
            driver=spec.driver,
            instructions=spec.instructions,
            digest=digest,
            records=records,
            raw_bytes=raw_bytes,
            stored_bytes=stored_bytes,
        )
        with manifest_lock(self.root):
            manifest = self.manifest()  # re-read under the lock: merge
            manifest.put(entry)
            save_manifest(manifest, self.manifest_path)
        self.built += 1
        return CorpusObject(path=path, entry=entry, built=True)

    # -- replay-side consumers ----------------------------------------------

    def run_result(
        self,
        spec: TraceScenarioSpec,
        config: HierarchyConfig = WESTMERE,
    ) -> RunResult:
        """The spec's live statistics, from the corpus (replay-verified)."""
        return replay_timing(self.ensure(spec, config).path)

    def slowdown(
        self,
        profile: BenchmarkProfile,
        scenario: Scenario,
        instructions: int,
        baseline_config: HierarchyConfig = WESTMERE,
        variant_config: HierarchyConfig | None = None,
    ) -> float:
        """Corpus-resolved twin of :func:`repro.workloads.generator.slowdown`.

        Both the unprotected baseline and the scenario variant resolve
        through the store; replay is bit-identical to the live runs, so
        the returned figure quantity equals the live computation exactly
        — while repeated invocations (and other figures sharing the
        baseline) replay instead of re-synthesising.
        """
        base = self.run_result(figure_spec(profile, Scenario.baseline(), instructions))
        variant = self.run_result(figure_spec(profile, scenario, instructions))
        base_cycles = base.cycles(baseline_config, profile)
        variant_cycles = variant.cycles(
            variant_config or baseline_config, profile
        )
        return variant_cycles / base_cycles - 1.0

    # -- maintenance ---------------------------------------------------------

    def build_registry(
        self,
        names: list[str] | None = None,
        instructions: int | None = None,
        config: HierarchyConfig = WESTMERE,
    ) -> list[CorpusObject]:
        """Ensure every (named) registry mix is recorded; returns outcomes."""
        outcomes = []
        for name in names or sorted(CORPUS):
            spec = CORPUS[name]
            if instructions is not None:
                spec = spec.scaled(instructions)
            outcomes.append(self.ensure(spec, config))
        return outcomes

    def verify(self) -> list[str]:
        """Re-hash every referenced object; returns problem descriptions."""
        problems: list[str] = []
        for fingerprint, entry in sorted(self.manifest().entries.items()):
            path = self.object_path(entry.digest)
            if not os.path.exists(path):
                problems.append(
                    f"{entry.scenario}: object {entry.digest[:12]}… missing "
                    f"({path})"
                )
                continue
            try:
                digest, raw_bytes, _footer = canonical_digest(path)
            except Exception as error:  # corrupt container
                problems.append(
                    f"{entry.scenario}: object {entry.digest[:12]}… "
                    f"unreadable: {error}"
                )
                continue
            if digest != entry.digest:
                problems.append(
                    f"{entry.scenario}: digest mismatch — manifest "
                    f"{entry.digest[:12]}…, on-disk stream hashes to "
                    f"{digest[:12]}…"
                )
            elif raw_bytes != entry.raw_bytes:
                problems.append(
                    f"{entry.scenario}: canonical length {raw_bytes} != "
                    f"manifest {entry.raw_bytes}"
                )
        return problems

    def gc(self) -> list[str]:
        """Remove unreferenced object files and stale manifest entries."""
        removed: list[str] = []
        with manifest_lock(self.root):
            manifest = self.manifest()
            stale = [
                fingerprint
                for fingerprint, entry in manifest.entries.items()
                if not os.path.exists(self.object_path(entry.digest))
            ]
            for fingerprint in stale:
                entry = manifest.entries.pop(fingerprint)
                removed.append(f"entry {entry.scenario} ({fingerprint[:12]}…)")
            if stale:
                save_manifest(manifest, self.manifest_path)
            referenced = manifest.digests()
        if os.path.isdir(self.objects_dir):
            import time

            stale_before = time.time() - STALE_RECORDING_SECONDS
            for dirpath, _dirnames, filenames in os.walk(self.objects_dir):
                for filename in filenames:
                    digest, ext = os.path.splitext(filename)
                    path = os.path.join(dirpath, filename)
                    if ext == ".trace" and digest in referenced:
                        continue
                    # Anything else is either a concurrent builder's
                    # artifact (an in-progress .recording, or an object
                    # published moments before its manifest entry lands)
                    # or a crash leftover; age separates the two.
                    try:
                        if os.path.getmtime(path) > stale_before:
                            continue
                        os.remove(path)
                    except OSError:
                        continue  # renamed/removed mid-walk
                    removed.append(path)
        return removed


def default_store() -> CorpusStore:
    """The process-wide default store (``$REPRO_CORPUS_DIR`` or
    ``./.repro-corpus``)."""
    return CorpusStore(os.environ.get(ENV_ROOT, DEFAULT_ROOT))


def figure_spec(
    profile: BenchmarkProfile, scenario: Scenario, instructions: int
) -> TraceScenarioSpec:
    """The corpus spec of one figure-sweep cell.

    Mirrors :func:`repro.workloads.generator.slowdown`'s live-run
    parameters exactly (seed 0, full warmup, default quarantine), so the
    corpus-resolved figure equals the live figure bit-for-bit.
    """
    return TraceScenarioSpec(
        name=f"fig/{profile.name}/{scenario.describe().replace(' ', '_')}"
        f"/b{scenario.binary_seed}",
        description="figure-sweep workload (corpus-resolved)",
        profile=profile,
        policy=policy_to_str(scenario.policy),
        with_cform=scenario.with_cform,
        min_bytes=scenario.min_bytes,
        max_bytes=scenario.max_bytes,
        binary_seed=scenario.binary_seed,
        instructions=instructions,
    )


def registry_fingerprint(config: HierarchyConfig = WESTMERE) -> str:
    """One combined fingerprint over the whole scenario registry.

    Changes whenever any registry spec (or the recording geometry or
    fingerprint scheme) changes — the CI cache key for the corpus
    directory.
    """
    combined = hashlib.sha256()
    for name in sorted(CORPUS):
        combined.update(spec_fingerprint(CORPUS[name], config).encode())
    return combined.hexdigest()
