"""The corpus manifest: spec fingerprints bound to trace objects.

The manifest is one JSON document at the store root.  Its ``entries``
map a **spec fingerprint** (sha256 over the scenario-spec document plus
the recording geometry — everything that determines the logical event
stream) to the metadata of the recorded object: the content digest that
names the object file, record/byte counts and the scenario name.  The
fingerprint answers "have we recorded this workload?"; the digest
answers "are the bytes on disk the ones we recorded?" — together they
make the store reproducible (same spec → same fingerprint → same object)
and verifiable (``python -m repro.corpus verify``).

Writes are atomic (temp file + ``os.replace``) and serialised through an
advisory file lock, so parallel experiment sections building overlapping
corpora converge instead of clobbering each other; a lost race costs at
worst one redundant re-recording, never a corrupt manifest.
"""

from __future__ import annotations

import contextlib
import json
import os
from dataclasses import asdict, dataclass, field

#: Bump when entry keys change shape.
MANIFEST_VERSION = 1

MANIFEST_NAME = "manifest.json"
LOCK_NAME = "manifest.lock"


@dataclass(frozen=True)
class ManifestEntry:
    """One recorded workload: spec fingerprint → stored trace object."""

    fingerprint: str
    scenario: str
    driver: str
    instructions: int
    digest: str  # sha256 of the canonical (CALTRC01) byte stream
    records: int
    raw_bytes: int  # canonical v1 stream length
    stored_bytes: int  # on-disk (compressed) object size

    @property
    def compression_ratio(self) -> float:
        return self.raw_bytes / self.stored_bytes if self.stored_bytes else 0.0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, document: dict) -> "ManifestEntry":
        return cls(**document)


@dataclass
class Manifest:
    """All recorded workloads of one store."""

    entries: dict[str, ManifestEntry] = field(default_factory=dict)

    def get(self, fingerprint: str) -> ManifestEntry | None:
        return self.entries.get(fingerprint)

    def put(self, entry: ManifestEntry) -> None:
        self.entries[entry.fingerprint] = entry

    def digests(self) -> set[str]:
        return {entry.digest for entry in self.entries.values()}


def load_manifest(path: str) -> Manifest:
    """Load the manifest, tolerating a missing file (empty store)."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except FileNotFoundError:
        return Manifest()
    except json.JSONDecodeError as error:
        raise ValueError(f"corrupt corpus manifest {path}: {error}") from None
    version = document.get("manifest_version")
    if version != MANIFEST_VERSION:
        raise ValueError(
            f"corpus manifest {path} has version {version!r} "
            f"(expected {MANIFEST_VERSION})"
        )
    entries = {
        fingerprint: ManifestEntry.from_dict(entry)
        for fingerprint, entry in document.get("entries", {}).items()
    }
    return Manifest(entries=entries)


def save_manifest(manifest: Manifest, path: str) -> None:
    """Atomically write the manifest (temp file + rename)."""
    document = {
        "manifest_version": MANIFEST_VERSION,
        "entries": {
            fingerprint: entry.to_dict()
            for fingerprint, entry in sorted(manifest.entries.items())
        },
    }
    temp_path = f"{path}.tmp.{os.getpid()}"
    with open(temp_path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(temp_path, path)


@contextlib.contextmanager
def manifest_lock(root: str):
    """Advisory lock serialising read-modify-write manifest updates.

    Uses ``fcntl.flock`` where available (POSIX); elsewhere degrades to
    no locking — the atomic replace still prevents corruption, a lost
    race merely re-records one workload later.
    """
    try:
        import fcntl
    except ImportError:  # non-POSIX: atomic replace is the only guard
        yield
        return
    os.makedirs(root, exist_ok=True)  # gc/verify on a never-built store
    lock_path = os.path.join(root, LOCK_NAME)
    with open(lock_path, "a") as lock_file:
        fcntl.flock(lock_file, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(lock_file, fcntl.LOCK_UN)
