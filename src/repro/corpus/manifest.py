"""The corpus manifest: spec fingerprints bound to trace objects.

The manifest is one JSON document at the store root.  Its ``entries``
map a **spec fingerprint** (sha256 over the scenario-spec document plus
the recording geometry — everything that determines the logical event
stream) to the metadata of the recorded object: the content digest that
names the object file, record/byte counts and the scenario name.  The
fingerprint answers "have we recorded this workload?"; the digest
answers "are the bytes on disk the ones we recorded?" — together they
make the store reproducible (same spec → same fingerprint → same object)
and verifiable (``python -m repro.corpus verify``).

Writes are atomic (temp file + ``os.replace``) and serialised through an
advisory file lock, so parallel experiment sections building overlapping
corpora converge instead of clobbering each other; a lost race costs at
worst one redundant re-recording, never a corrupt manifest.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from dataclasses import asdict, dataclass, field

#: Bump when entry keys change shape.
MANIFEST_VERSION = 1

MANIFEST_NAME = "manifest.json"
LOCK_NAME = "manifest.lock"

#: Default seconds a writer waits for the manifest lock before raising
#: :class:`ManifestLockTimeout`; ``$REPRO_LOCK_TIMEOUT`` overrides it.
ENV_LOCK_TIMEOUT = "REPRO_LOCK_TIMEOUT"
DEFAULT_LOCK_TIMEOUT = 30.0

#: Exponential-backoff schedule for lock acquisition: the first retry
#: sleeps this long, every later retry doubles it up to the cap.
LOCK_BACKOFF_INITIAL = 0.01
LOCK_BACKOFF_MAX = 0.25


class ManifestLockTimeout(TimeoutError):
    """The manifest lock could not be acquired within the timeout.

    Carries enough diagnostics to tell a *busy* lock (another builder is
    mid-update; rerun later) from a *stuck* one (the holder recorded in
    the lock file is hung or unkillable).  A dead holder never blocks:
    ``flock`` locks evaporate with their process, so a leftover
    ``manifest.lock`` file on disk is inert.
    """


@dataclass(frozen=True)
class ManifestEntry:
    """One recorded workload: spec fingerprint → stored trace object."""

    fingerprint: str
    scenario: str
    driver: str
    instructions: int
    digest: str  # sha256 of the canonical (CALTRC01) byte stream
    records: int
    raw_bytes: int  # canonical v1 stream length
    stored_bytes: int  # on-disk (compressed) object size
    #: The full spec document that recorded the object.  Optional so
    #: pre-reliability manifests still load; with it, a damaged object
    #: can be re-recorded from the manifest alone (``verify --repair``)
    #: — the spec, not the bytes, is the corpus's source of truth.
    spec: dict | None = None

    @property
    def compression_ratio(self) -> float:
        return self.raw_bytes / self.stored_bytes if self.stored_bytes else 0.0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, document: dict) -> "ManifestEntry":
        return cls(**document)


@dataclass
class Manifest:
    """All recorded workloads of one store."""

    entries: dict[str, ManifestEntry] = field(default_factory=dict)

    def get(self, fingerprint: str) -> ManifestEntry | None:
        return self.entries.get(fingerprint)

    def put(self, entry: ManifestEntry) -> None:
        self.entries[entry.fingerprint] = entry

    def digests(self) -> set[str]:
        return {entry.digest for entry in self.entries.values()}


def load_manifest(path: str) -> Manifest:
    """Load the manifest, tolerating a missing file (empty store)."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except FileNotFoundError:
        return Manifest()
    except json.JSONDecodeError as error:
        raise ValueError(f"corrupt corpus manifest {path}: {error}") from None
    version = document.get("manifest_version")
    if version != MANIFEST_VERSION:
        raise ValueError(
            f"corpus manifest {path} has version {version!r} "
            f"(expected {MANIFEST_VERSION})"
        )
    entries = {
        fingerprint: ManifestEntry.from_dict(entry)
        for fingerprint, entry in document.get("entries", {}).items()
    }
    return Manifest(entries=entries)


def save_manifest(manifest: Manifest, path: str) -> None:
    """Atomically write the manifest (temp file + rename)."""
    document = {
        "manifest_version": MANIFEST_VERSION,
        "entries": {
            fingerprint: entry.to_dict()
            for fingerprint, entry in sorted(manifest.entries.items())
        },
    }
    temp_path = f"{path}.tmp.{os.getpid()}"
    with open(temp_path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(temp_path, path)


def _lock_diagnostics(lock_path: str) -> str:
    """Describe who last held a lock file and how stale it looks."""
    holder = "unknown holder"
    age = "unknown age"
    try:
        with open(lock_path) as handle:
            content = handle.read().strip()
        if content:
            holder = f"last acquired by {content}"
    except OSError:
        pass
    try:
        age = f"{time.time() - os.path.getmtime(lock_path):.0f}s old"
    except OSError:
        pass
    return (
        f"{lock_path} ({holder}; {age}); flock releases when its holder "
        f"dies, so a blocked acquire means a live process is holding it — "
        f"the on-disk lock file itself is never stale and is safe to keep"
    )


@contextlib.contextmanager
def manifest_lock(root: str, timeout: float | None = None):
    """Advisory lock serialising read-modify-write manifest updates.

    Uses ``fcntl.flock`` where available (POSIX); elsewhere degrades to
    no locking — the atomic replace still prevents corruption, a lost
    race merely re-records one workload later.

    Acquisition is non-blocking with exponential backoff: a holder that
    never releases (hung builder, debugger-stopped worker) surfaces as a
    :class:`ManifestLockTimeout` naming the lock file, its last holder
    and its age after ``timeout`` seconds (``$REPRO_LOCK_TIMEOUT`` or
    30 s by default) instead of blocking the run forever.
    """
    try:
        import fcntl
    except ImportError:  # non-POSIX: atomic replace is the only guard
        yield
        return
    if timeout is None:
        timeout = float(
            os.environ.get(ENV_LOCK_TIMEOUT, DEFAULT_LOCK_TIMEOUT)
        )
    os.makedirs(root, exist_ok=True)  # gc/verify on a never-built store
    lock_path = os.path.join(root, LOCK_NAME)
    with open(lock_path, "a+") as lock_file:
        deadline = time.monotonic() + timeout
        backoff = LOCK_BACKOFF_INITIAL
        while True:
            try:
                fcntl.flock(lock_file, fcntl.LOCK_EX | fcntl.LOCK_NB)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise ManifestLockTimeout(
                        f"timed out after {timeout:.1f}s waiting for the "
                        f"corpus manifest lock {_lock_diagnostics(lock_path)}"
                    ) from None
                time.sleep(min(backoff, max(0.0, deadline - time.monotonic())))
                backoff = min(backoff * 2, LOCK_BACKOFF_MAX)
        try:
            # Best-effort holder breadcrumb for timeout diagnostics.
            try:
                lock_file.seek(0)
                lock_file.truncate()
                lock_file.write(f"pid {os.getpid()}")
                lock_file.flush()
            except OSError:
                pass
            yield
        finally:
            fcntl.flock(lock_file, fcntl.LOCK_UN)
