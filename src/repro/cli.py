"""One front door: ``python -m repro``.

Subcommands::

    run       run registered experiments (by name/tag/--set; default: all)
              and write EXPERIMENTS.md + results/*.json
    perf      the perf harness          (= python -m repro.perf ...)
    trace     the trace engine          (= python -m repro.traces ...)
    corpus    the corpus store          (= python -m repro.corpus ...)
    faults    fault injection           (= python -m repro.reliability ...)
    loadgen   the traffic engine        (= python -m repro.loadgen ...)
    telemetry run introspection         (= python -m repro.telemetry ...)
    serve     corpus/experiment service (= python -m repro.serve ...)

``run`` is implemented here against the experiment registry; the others
delegate verbatim to the existing module CLIs, so every flag those
tools document works unchanged.  Examples::

    python -m repro run                        # all sections, quick
    python -m repro run fig10 fig11            # two sections by name
    python -m repro run --tag trace            # everything trace-backed
    python -m repro run --full --jobs 4        # the paper-scale report
    python -m repro run --list                 # what exists
    python -m repro run --set synthetic        # a loadgen benchmark set
    python -m repro run --check                # gate vs results/reference/
    python -m repro run --update-reference     # reseed the committed refs
    python -m repro run --telemetry            # spans + metrics sidecar
    python -m repro run --profile-sections     # + per-section cProfile
    python -m repro telemetry summarize        # read the sidecar back
    python -m repro perf --quick
    python -m repro trace list
    python -m repro corpus ls
    python -m repro faults matrix              # the CI faults-smoke
    python -m repro loadgen list               # committed load scenarios
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments.context import PROFILES, RunContext
from repro.experiments.registry import (
    UnknownExperimentError,
    all_experiments,
    select,
)
from repro.experiments.runner import (
    DEFAULT_RESULTS_DIR,
    execute_report,
    write_report,
    write_results,
)


def _cmd_list() -> int:
    experiments = all_experiments()
    width = max(len(experiment.name) for experiment in experiments)
    for experiment in experiments:
        tags = ",".join(sorted(experiment.tags))
        needs = ",".join(sorted(experiment.needs)) or "-"
        print(
            f"{experiment.name:{width}s}  {tags:18s} needs={needs:28s} "
            f"{experiment.title}"
        )
    return 0


def _cmd_run(arguments: argparse.Namespace) -> int:
    if arguments.list:
        return _cmd_list()
    if arguments.reference is None:
        from repro.experiments.check import DEFAULT_REFERENCE_DIR

        arguments.reference = DEFAULT_REFERENCE_DIR
    profile = "full" if arguments.full else arguments.profile
    sets = tuple(arguments.set or ())
    ctx = RunContext.create(
        profile=profile,
        corpus=arguments.corpus,
        no_corpus=arguments.no_corpus,
        jobs=arguments.jobs,
        faults=arguments.faults,
        sets=sets,
        profile_sections=arguments.profile_sections,
    )
    names = list(arguments.names)
    if sets and "loadgen_contention" not in names:
        # --set targets the loadgen section; compose with any explicit
        # name/tag selection rather than replacing it.
        names.append("loadgen_contention")
    experiments = select(names, arguments.tag or ())
    # A name/tag/--set selection defaults its artifacts to partial
    # locations (EXPERIMENTS.partial.md, results/partial/) so it never
    # clobbers the canonical all-sections report and results trajectory;
    # an explicit --output/--results-dir always wins.
    partial = bool(arguments.names or arguments.tag or sets)
    output = arguments.output or (
        "EXPERIMENTS.partial.md" if partial else "EXPERIMENTS.md"
    )
    results_dir = arguments.results_dir or (
        os.path.join(DEFAULT_RESULTS_DIR, "partial")
        if partial
        else DEFAULT_RESULTS_DIR
    )
    # Telemetry is opt-in (--telemetry / --profile-sections) and implied
    # by paper-scale runs (--full); --no-telemetry always wins.  Default
    # (quick) runs stay telemetry-free so their artifacts — including
    # index.json's null observability stanza — are byte-identical across
    # invocations.
    telemetry_enabled = (
        arguments.telemetry is not None
        or profile == "full"
        or arguments.profile_sections
    ) and not arguments.no_telemetry
    telemetry_dir = None
    if telemetry_enabled:
        from repro import telemetry as telemetry_module

        telemetry_dir = arguments.telemetry or os.path.join(
            results_dir, "telemetry"
        )
        telemetry_module.configure(telemetry_dir, fresh=True)
    started = time.time()
    # Snapshot the corpus heal ledger so this run reports exactly the
    # self-heal events it caused (workers append to the same file).
    heal_cursor = ctx.store.heal_log_size() if ctx.store else 0
    try:
        report = execute_report(experiments, ctx)
    finally:
        # Final flush + close + drop the env switch, even on a failed
        # run, so an in-process caller never inherits a stale sink.
        if telemetry_dir is not None:
            telemetry_module.shutdown()
    results = report.outcomes
    corpus_events = (
        ctx.store.heal_events(since=heal_cursor) if ctx.store else []
    )
    telemetry_paths = None
    if telemetry_dir is not None:
        from repro.telemetry.export import export_run

        telemetry_paths = export_run(telemetry_dir)
    check_report = None
    if arguments.check:
        from repro.experiments.check import check_outcomes

        check_report = check_outcomes(results, arguments.reference)
    write_report(results, output)
    if not arguments.no_results:
        paths = write_results(
            results,
            results_dir,
            profile=ctx.profile,
            incidents=report.incidents,
            corpus_events=corpus_events,
            check=check_report.to_index() if check_report else None,
            timing=report.timing if telemetry_dir is not None else None,
            telemetry=telemetry_dir,
        )
        print(f"results: {len(paths) - 1} section file(s) in {results_dir}/")
    if telemetry_paths is not None:
        print(
            f"telemetry: {', '.join(sorted(os.path.basename(p) for p in telemetry_paths.values()))} "
            f"in {telemetry_dir}/ "
            f"(inspect: python -m repro telemetry summarize {telemetry_dir})"
        )
    if arguments.update_reference:
        from repro.experiments.check import update_reference

        try:
            written = update_reference(results, arguments.reference)
        except ValueError as error:
            print(f"--update-reference: {error}", file=sys.stderr)
            return 1
        print(f"reference: {len(written)} file(s) in {arguments.reference}/")
    if ctx.corpus_root is not None:
        print(f"corpus: {ctx.corpus_root}")
    for event in corpus_events:
        print(
            f"corpus self-heal: {event.get('scenario')}: "
            f"{event.get('reason')}",
            file=sys.stderr,
        )
    print(
        f"wrote {output} ({len(results)} section(s)) "
        f"in {time.time() - started:.0f}s"
    )
    if check_report is not None:
        stream = sys.stdout if check_report.ok else sys.stderr
        for line in check_report.summary():
            print(line, file=stream)
    if report.failures:
        for failure in report.failures:
            print(
                f"FAILED {failure.name} ({failure.kind}, "
                f"{failure.attempts} attempt(s)): {failure.error}",
                file=sys.stderr,
            )
        print(
            f"{len(report.failures)} of {len(results)} section(s) failed "
            f"(see {results_dir + '/index.json' if not arguments.no_results else output})",
            file=sys.stderr,
        )
        return 1
    if check_report is not None and not check_report.ok:
        return 1
    return 0


#: Delegated subcommands: name -> import path of the module CLI's main.
#: Dispatched before argparse sees the argv tail, because
#: ``nargs=REMAINDER`` refuses tails that start with an option token
#: (``python -m repro perf --list``).
_DELEGATED = {
    "perf": "repro.perf.__main__",
    "trace": "repro.traces.__main__",
    "corpus": "repro.corpus.__main__",
    "faults": "repro.reliability.__main__",
    "loadgen": "repro.loadgen.__main__",
    "telemetry": "repro.telemetry.__main__",
    "serve": "repro.serve.__main__",
}


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in _DELEGATED:
        import importlib

        module = importlib.import_module(_DELEGATED[argv[0]])
        return module.main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Califorms reproduction: experiments, perf harness, "
        "trace engine and corpus store behind one CLI.",
    )
    from repro import package_version

    parser.add_argument(
        "--version", action="version", version=f"repro {package_version()}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run",
        help="run registered experiments and write EXPERIMENTS.md + "
        "results/*.json",
    )
    run.add_argument(
        "names", nargs="*", metavar="NAME",
        help="experiment names to run (default: all; see --list)",
    )
    run.add_argument(
        "--tag", action="append", metavar="TAG",
        help="also select every experiment carrying TAG (repeatable)",
    )
    run.add_argument(
        "--set", action="append", metavar="SET",
        help="run the loadgen_contention section over this benchmark "
        "set, scenario or counted alias (repeatable; see python -m "
        "repro loadgen sets)",
    )
    run.add_argument(
        "--profile", choices=sorted(PROFILES), default="quick",
        help="workload scale (default: quick)",
    )
    run.add_argument(
        "--full", action="store_true",
        help="shorthand for --profile full (long traces, 3 seeds)",
    )
    run.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for the experiment sections (default: 1)",
    )
    run.add_argument(
        "--output", default=None,
        help="report path (default: EXPERIMENTS.md; name/tag selections "
        "default to EXPERIMENTS.partial.md)",
    )
    run.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help=f"per-section JSON output directory (default: "
        f"{DEFAULT_RESULTS_DIR}/; name/tag selections default to "
        f"{DEFAULT_RESULTS_DIR}/partial/)",
    )
    run.add_argument(
        "--no-results", action="store_true",
        help="skip writing the per-section JSON documents",
    )
    run.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="corpus store root for the trace-consuming sections "
        "(default: $REPRO_CORPUS_DIR or ./.repro-corpus)",
    )
    run.add_argument(
        "--no-corpus", action="store_true",
        help="synthesise every workload live instead of using the corpus",
    )
    run.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="JSON fault plan to inject during the run (testing; see "
        "python -m repro faults plan)",
    )
    run.add_argument(
        "--telemetry", nargs="?", const="", default=None, metavar="DIR",
        help="capture spans + metrics into DIR (default: "
        "<results dir>/telemetry); implied by --full and "
        "--profile-sections.  Deterministic artifacts are unaffected.",
    )
    run.add_argument(
        "--no-telemetry", action="store_true",
        help="disable telemetry even where it is implied (--full, "
        "--profile-sections)",
    )
    run.add_argument(
        "--profile-sections", action="store_true",
        help="cProfile each section into the telemetry sink "
        "(profiles/*.pstats + hotspot records; implies --telemetry)",
    )
    run.add_argument(
        "--check", action="store_true",
        help="gate this run's section data against the committed "
        "reference results; any metric drift exits non-zero and is "
        "summarised in results/index.json",
    )
    run.add_argument(
        "--reference", default=None, metavar="DIR",
        help="reference results directory for --check/--update-reference "
        "(default: results/reference/)",
    )
    run.add_argument(
        "--update-reference", action="store_true",
        help="write this run's section documents into the reference "
        "directory (refused if any section failed)",
    )
    run.add_argument(
        "--list", action="store_true",
        help="list registered experiments (name, tags, needs) and exit",
    )

    # Registered for `python -m repro -h` discoverability; actual
    # dispatch happened above, before argparse.
    for name, help_text in (
        ("perf", "perf harness (= python -m repro.perf ...)"),
        ("trace", "trace engine (= python -m repro.traces ...)"),
        ("corpus", "corpus store (= python -m repro.corpus ...)"),
        ("faults", "fault injection (= python -m repro.reliability ...)"),
        ("loadgen", "traffic engine (= python -m repro.loadgen ...)"),
        ("telemetry", "run introspection (= python -m repro.telemetry ...)"),
        ("serve", "corpus/experiment service (= python -m repro.serve ...)"),
    ):
        commands.add_parser(name, help=help_text, add_help=False)

    arguments = parser.parse_args(argv)
    if arguments.jobs < 1:
        parser.error("--jobs must be >= 1")
    if arguments.set:
        from repro.loadgen.sets import load_scenarios, resolve

        try:  # fail fast on unknown sets/scenarios, not mid-run
            resolve(arguments.set, load_scenarios())
        except (KeyError, ValueError, OSError) as error:
            message = (
                str(error.args[0])
                if isinstance(error, KeyError) and error.args
                else str(error)
            )
            parser.error(f"--set: {message}")
    if arguments.faults:
        from repro.reliability.faults import FaultPlan

        try:  # fail fast, not as a per-section failure mid-run
            FaultPlan.from_json(arguments.faults)
        except Exception as error:
            parser.error(f"--faults is not a valid fault plan: {error}")
    try:
        return _cmd_run(arguments)
    except UnknownExperimentError as error:
        parser.error(str(error.args[0]) if error.args else str(error))
        return 2  # unreachable; parser.error exits


if __name__ == "__main__":
    sys.exit(main())
