"""Security-byte insertion policies (Section 2 / Listing 1 / Section 6.2).

Three policies transform a natural struct layout into a *califormed
layout* — field offsets plus the security-byte spans to blacklist:

``opportunistic`` (Listing 1b)
    Harvest the compiler's existing padding bytes.  No layout change, no
    memory overhead, interoperable with external modules.

``full`` (Listing 1c)
    Insert a random-sized span (1..max bytes) before the first field,
    between every pair of fields, and after the last field.  Widest
    coverage, largest overhead.  Natural padding that still appears after
    insertion is harvested too (it is equally dead).

``intelligent`` (Listing 1d)
    Insert random-sized spans only around the attack-prone fields: arrays
    and (data or function) pointers.  Natural padding between other fields
    is deliberately *not* harvested — the paper notes doing so would add
    CFORM traffic for little security value.

``fixed_full``
    The Figure 4 measurement pass: a fixed-size span after every field.
    Used to chart slowdown versus padding size.

Random span sizes are drawn per-site from ``[min_bytes, max_bytes]``
(uniform), seeded per compilation so that three differently-seeded
binaries of the same program get different layouts (the derandomization
defense of Section 7.3 and the error bars of Figure 11).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError
from repro.softstack.ctypes_model import (
    Struct,
    align_up,
    is_blacklist_target,
)
from repro.softstack.layout import StructLayout, layout_struct


class Policy(enum.Enum):
    """The user-selectable insertion policy (Section 6.2)."""

    OPPORTUNISTIC = "opportunistic"
    FULL = "full"
    INTELLIGENT = "intelligent"


@dataclass(frozen=True)
class SecuritySpan:
    """A run of blacklisted bytes inside an object."""

    offset: int
    size: int
    source: str  # "padding" (harvested) or "inserted"

    @property
    def end(self) -> int:
        return self.offset + self.size


@dataclass(frozen=True)
class CaliformedLayout:
    """A struct layout augmented with security-byte spans.

    ``slots`` maps field names to their (possibly shifted) offsets; the
    memory and runtime layers consume ``spans`` to drive ``CFORM``.
    """

    name: str
    base: StructLayout
    field_offsets: dict[str, int]
    spans: tuple[SecuritySpan, ...]
    size: int
    align: int
    policy: Policy | None

    @property
    def security_bytes(self) -> int:
        return sum(span.size for span in self.spans)

    @property
    def memory_overhead_bytes(self) -> int:
        """Bytes added over the natural layout."""
        return self.size - self.base.size

    @property
    def data_byte_offsets(self) -> list[int]:
        """Offsets within the object that are NOT security bytes."""
        blacklisted = self.security_offsets_set()
        return [o for o in range(self.size) if o not in blacklisted]

    def security_offsets_set(self) -> set[int]:
        out: set[int] = set()
        for span in self.spans:
            out.update(range(span.offset, span.end))
        return out

    def offset_of(self, field_name: str) -> int:
        return self.field_offsets[field_name]

    def field_size(self, field_name: str) -> int:
        return self.base.struct.field(field_name).ctype.size


def _validate_sizes(min_bytes: int, max_bytes: int) -> None:
    if not 1 <= min_bytes <= max_bytes <= 7:
        raise ConfigurationError(
            "security-byte span sizes must satisfy 1 <= min <= max <= 7 "
            f"(got [{min_bytes}, {max_bytes}]); the paper inserts 1-7 B spans"
        )


def opportunistic(layout: StructLayout) -> CaliformedLayout:
    """Blacklist the existing padding bytes; never move a field."""
    spans = tuple(
        SecuritySpan(span.offset, span.size, "padding") for span in layout.paddings
    )
    return CaliformedLayout(
        name=layout.name,
        base=layout,
        field_offsets={slot.name: slot.offset for slot in layout.slots},
        spans=spans,
        size=layout.size,
        align=layout.align,
        policy=Policy.OPPORTUNISTIC,
    )


def full(
    layout: StructLayout,
    rng: random.Random,
    min_bytes: int = 1,
    max_bytes: int = 7,
) -> CaliformedLayout:
    """Random-sized spans before, between and after every field."""
    _validate_sizes(min_bytes, max_bytes)
    draw = lambda: rng.randint(min_bytes, max_bytes)  # noqa: E731
    return _rebuild(
        layout,
        before_first=draw(),
        between=lambda previous_slot, next_slot: draw(),
        after_last=draw(),
        policy=Policy.FULL,
    )


def intelligent(
    layout: StructLayout,
    rng: random.Random,
    min_bytes: int = 1,
    max_bytes: int = 7,
) -> CaliformedLayout:
    """Random-sized spans around arrays and pointers only (Listing 1d)."""
    _validate_sizes(min_bytes, max_bytes)
    draw = lambda: rng.randint(min_bytes, max_bytes)  # noqa: E731

    def between(previous_slot, next_slot) -> int:
        if is_blacklist_target(previous_slot.ctype) or is_blacklist_target(
            next_slot.ctype
        ):
            return draw()
        return 0

    slots = layout.slots
    after_last = draw() if is_blacklist_target(slots[-1].ctype) else 0
    return _rebuild(
        layout,
        before_first=0,
        between=between,
        after_last=after_last,
        policy=Policy.INTELLIGENT,
        harvest_padding=False,
    )


def fixed_full(layout: StructLayout, pad_bytes: int) -> CaliformedLayout:
    """Fixed ``pad_bytes`` after every field — the Figure 4 sweep pass."""
    if not 0 <= pad_bytes <= 7:
        raise ConfigurationError("Figure 4 sweeps padding sizes 0..7")
    if pad_bytes == 0:
        return opportunistic(layout)
    return _rebuild(
        layout,
        before_first=0,
        between=lambda previous_slot, next_slot: pad_bytes,
        after_last=pad_bytes,
        policy=Policy.FULL,
    )


def apply_policy(
    layout: StructLayout,
    policy: Policy,
    rng: random.Random,
    min_bytes: int = 1,
    max_bytes: int = 7,
) -> CaliformedLayout:
    """Dispatch on the policy enum."""
    if policy is Policy.OPPORTUNISTIC:
        return opportunistic(layout)
    if policy is Policy.FULL:
        return full(layout, rng, min_bytes, max_bytes)
    return intelligent(layout, rng, min_bytes, max_bytes)


def _rebuild(
    layout: StructLayout,
    before_first: int,
    between,
    after_last: int,
    policy: Policy,
    harvest_padding: bool = True,
) -> CaliformedLayout:
    """Re-lay the struct with security spans interleaved.

    Inserted spans behave like ``char security_bytes[n]`` members
    (Listing 1): alignment of the following field is restored with
    ordinary padding, which is dead space and (when ``harvest_padding``)
    becomes part of the protection.
    """
    struct: Struct = layout.struct
    field_offsets: dict[str, int] = {}
    spans: list[SecuritySpan] = []
    cursor = 0

    def add_span(size: int, source: str) -> None:
        nonlocal cursor
        if size > 0:
            spans.append(SecuritySpan(cursor, size, source))
            cursor += size

    add_span(before_first, "inserted")
    previous_slot = None
    for slot in layout.slots:
        if previous_slot is not None:
            add_span(between(previous_slot, slot), "inserted")
        aligned = align_up(cursor, slot.ctype.align)
        if aligned > cursor and harvest_padding:
            add_span(aligned - cursor, "padding")
        cursor = aligned
        field_offsets[slot.name] = cursor
        cursor += slot.ctype.size
        previous_slot = slot
    add_span(after_last, "inserted")
    total = align_up(cursor, struct.align)
    if total > cursor and harvest_padding:
        add_span(total - cursor, "padding")

    merged = _merge_adjacent(spans)
    return CaliformedLayout(
        name=layout.name,
        base=layout,
        field_offsets=field_offsets,
        spans=tuple(merged),
        size=total,
        align=struct.align,
        policy=policy,
    )


def _merge_adjacent(spans: list[SecuritySpan]) -> list[SecuritySpan]:
    """Coalesce touching spans (an inserted span may abut padding)."""
    merged: list[SecuritySpan] = []
    for span in sorted(spans, key=lambda s: s.offset):
        if merged and merged[-1].end == span.offset:
            last = merged[-1]
            source = last.source if last.source == span.source else "inserted"
            merged[-1] = SecuritySpan(last.offset, last.size + span.size, source)
        else:
            merged.append(span)
    return merged
