"""A small C struct-declaration parser.

The paper's toolchain consumes C source; this parser lets the library do
the same for the subset that matters to layout analysis — so users can
paste real struct declarations into the Figure 3 census or the compiler
pass instead of building :class:`Struct` objects by hand::

    structs = parse_structs('''
        struct A {
            char c;
            int i;
            char buf[64];
            void (*fp)();
            double d;
        };
    ''')

Supported: the standard scalar types (with ``unsigned``/``signed``),
pointers (all flattened to ``void *`` for layout purposes), function
pointers, (multi-dimensional) arrays, several declarators per line, and
references to previously declared structs.  ``//`` and ``/* */`` comments
are stripped.  Bit-fields are rejected explicitly — the paper excludes
them from byte-granular protection (Section 7.2).
"""

from __future__ import annotations

import re

from repro.core.exceptions import CaliformsError
from repro.softstack.ctypes_model import (
    BOOL,
    CHAR,
    CType,
    DOUBLE,
    FLOAT,
    FUNCTION_POINTER,
    Field,
    INT,
    LONG,
    LONG_LONG,
    POINTER,
    SHORT,
    SIGNED_CHAR,
    Struct,
    UNSIGNED_CHAR,
    UNSIGNED_INT,
    UNSIGNED_LONG,
    UNSIGNED_SHORT,
)


class ParseError(CaliformsError):
    """Malformed struct declaration text."""


_SCALARS: dict[str, CType] = {
    "char": CHAR,
    "signed char": SIGNED_CHAR,
    "unsigned char": UNSIGNED_CHAR,
    "_Bool": BOOL,
    "bool": BOOL,
    "short": SHORT,
    "short int": SHORT,
    "unsigned short": UNSIGNED_SHORT,
    "unsigned short int": UNSIGNED_SHORT,
    "int": INT,
    "signed": INT,
    "signed int": INT,
    "unsigned": UNSIGNED_INT,
    "unsigned int": UNSIGNED_INT,
    "long": LONG,
    "long int": LONG,
    "unsigned long": UNSIGNED_LONG,
    "unsigned long int": UNSIGNED_LONG,
    "long long": LONG_LONG,
    "unsigned long long": UNSIGNED_LONG,
    "float": FLOAT,
    "double": DOUBLE,
    "size_t": UNSIGNED_LONG,
    "void": None,  # only valid as a pointer base
}

_COMMENT_RE = re.compile(r"/\*.*?\*/|//[^\n]*", re.S)
_STRUCT_RE = re.compile(
    r"struct\s+(?P<name>\w+)\s*\{(?P<body>[^{}]*)\}\s*;", re.S
)
_FUNCTION_POINTER_RE = re.compile(
    r"^(?P<base>[\w\s]+?)\s*\(\s*\*\s*(?P<name>\w+)\s*\)\s*\([^)]*\)$"
)
_ARRAY_SUFFIX_RE = re.compile(r"\[\s*(\d+)\s*\]")


def parse_structs(
    source: str, known: dict[str, Struct] | None = None
) -> list[Struct]:
    """Parse every ``struct NAME { ... };`` in ``source``, in order.

    ``known`` seeds the struct namespace for cross-references (and is
    updated in place when provided).
    """
    namespace: dict[str, Struct] = dict(known) if known else {}
    text = _COMMENT_RE.sub(" ", source)
    structs: list[Struct] = []
    matched_any = False
    for match in _STRUCT_RE.finditer(text):
        matched_any = True
        name = match.group("name")
        fields = _parse_body(match.group("body"), name, namespace)
        struct = Struct(name, tuple(fields))
        namespace[name] = struct
        structs.append(struct)
        if known is not None:
            known[name] = struct
    if not matched_any and text.strip():
        raise ParseError("no struct declarations found")
    return structs


def parse_struct(source: str, known: dict[str, Struct] | None = None) -> Struct:
    """Parse exactly one struct declaration."""
    structs = parse_structs(source, known)
    if len(structs) != 1:
        raise ParseError(f"expected exactly one struct, found {len(structs)}")
    return structs[0]


def _parse_body(body: str, struct_name: str, namespace: dict[str, Struct]):
    fields: list[Field] = []
    for raw_line in body.split(";"):
        line = raw_line.strip()
        if not line:
            continue
        if ":" in line:
            raise ParseError(
                f"struct {struct_name}: bit-fields are unsupported "
                "(Califorms is byte-granular, Section 7.2)"
            )
        fields.extend(_parse_member(line, struct_name, namespace))
    if not fields:
        raise ParseError(f"struct {struct_name} has no members")
    return fields


def _parse_member(line: str, struct_name: str, namespace: dict[str, Struct]):
    function_pointer = _FUNCTION_POINTER_RE.match(line)
    if function_pointer:
        yield Field(function_pointer.group("name"), FUNCTION_POINTER)
        return

    base_type, declarators = _split_type(line, struct_name, namespace)
    for declarator in declarators.split(","):
        declarator = declarator.strip()
        if not declarator:
            raise ParseError(f"struct {struct_name}: empty declarator in {line!r}")
        yield _build_field(base_type, declarator, struct_name)


def _split_type(line: str, struct_name: str, namespace: dict[str, Struct]):
    """Split ``unsigned long *p, q[4]`` into (base type, declarator text)."""
    tokens = line.split()
    # struct reference: "struct NAME decl..."
    if tokens[0] == "struct":
        if len(tokens) < 3:
            raise ParseError(f"struct {struct_name}: malformed member {line!r}")
        target = tokens[1]
        rest = " ".join(tokens[2:])
        if rest.lstrip().startswith("*"):
            return POINTER, rest.lstrip().lstrip("*").strip()
        if target not in namespace:
            raise ParseError(
                f"struct {struct_name}: unknown struct {target!r} "
                "(declare it first)"
            )
        return namespace[target], rest
    # Longest scalar-type prefix match.
    for take in range(min(len(tokens) - 1, 3), 0, -1):
        candidate = " ".join(tokens[:take])
        if candidate in _SCALARS:
            return _SCALARS[candidate], " ".join(tokens[take:])
    raise ParseError(f"struct {struct_name}: unknown type in {line!r}")


def _build_field(base_type, declarator: str, struct_name: str) -> Field:
    from repro.softstack.ctypes_model import Array

    pointer_depth = 0
    while declarator.startswith("*"):
        pointer_depth += 1
        declarator = declarator[1:].strip()
    arrays = [int(n) for n in _ARRAY_SUFFIX_RE.findall(declarator)]
    name = _ARRAY_SUFFIX_RE.sub("", declarator).strip()
    if not re.fullmatch(r"\w+", name or ""):
        raise ParseError(f"struct {struct_name}: bad declarator {declarator!r}")

    ctype = POINTER if pointer_depth else base_type
    if ctype is None:  # bare `void x;`
        raise ParseError(f"struct {struct_name}: member {name!r} cannot be void")
    for length in reversed(arrays):
        ctype = Array(ctype, length)
    return Field(name, ctype)
