"""Struct layout computation: offsets, padding discovery, density.

Implements the natural-alignment layout algorithm every C ABI uses, and —
the part the paper cares about — reports *where the padding bytes are*.
Those dead spaces are what the opportunistic policy harvests for free
metadata storage (Section 2), and struct *density* (live bytes / total
bytes) is the Figure 3 statistic.

The tests validate offsets and sizes against CPython's ``ctypes`` module,
which implements the same ABI natively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.softstack.ctypes_model import CType, Struct, align_up


@dataclass(frozen=True)
class FieldSlot:
    """A field placed at a concrete offset."""

    name: str
    ctype: CType
    offset: int

    @property
    def size(self) -> int:
        return self.ctype.size

    @property
    def end(self) -> int:
        return self.offset + self.size


@dataclass(frozen=True)
class PaddingSpan:
    """A run of compiler-inserted dead bytes.

    ``after_field`` names the field the padding follows (``None`` for
    padding at the very start, which natural alignment never produces but
    the insertion policies can).
    """

    offset: int
    size: int
    after_field: str | None

    @property
    def end(self) -> int:
        return self.offset + self.size


@dataclass(frozen=True)
class StructLayout:
    """The complete concrete layout of one struct."""

    struct: Struct
    slots: tuple[FieldSlot, ...]
    paddings: tuple[PaddingSpan, ...]
    size: int
    align: int

    @property
    def name(self) -> str:
        return self.struct.name

    @property
    def live_bytes(self) -> int:
        """Bytes occupied by declared fields (including nested padding —
        the compiler pass view used for Figure 3)."""
        return sum(slot.size for slot in self.slots)

    @property
    def padding_bytes(self) -> int:
        return sum(span.size for span in self.paddings)

    @property
    def density(self) -> float:
        """Figure 3's struct density: field bytes over total bytes."""
        return self.live_bytes / self.size

    @property
    def has_padding(self) -> bool:
        return self.padding_bytes > 0

    def slot(self, name: str) -> FieldSlot:
        for slot in self.slots:
            if slot.name == name:
                return slot
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def offset_of(self, name: str) -> int:
        return self.slot(name).offset


def layout_struct(struct: Struct) -> StructLayout:
    """Compute the natural-alignment layout of ``struct``.

    Every field is placed at the next offset satisfying its alignment; the
    gaps become :class:`PaddingSpan` records; the total size is rounded up
    to the struct alignment, with any tail gap recorded as trailing
    padding.
    """
    slots: list[FieldSlot] = []
    paddings: list[PaddingSpan] = []
    offset = 0
    previous: str | None = None
    for member in struct.fields:
        aligned = align_up(offset, member.ctype.align)
        if aligned > offset:
            paddings.append(PaddingSpan(offset, aligned - offset, previous))
        slots.append(FieldSlot(member.name, member.ctype, aligned))
        offset = aligned + member.ctype.size
        previous = member.name
    total = align_up(offset, struct.align)
    if total > offset:
        paddings.append(PaddingSpan(offset, total - offset, previous))
    return StructLayout(
        struct=struct,
        slots=tuple(slots),
        paddings=tuple(paddings),
        size=total,
        align=struct.align,
    )


def densities(structs: list[Struct]) -> list[float]:
    """Struct densities for a corpus (the Figure 3 histogram input)."""
    return [layout_struct(s).density for s in structs]


def fraction_with_padding(structs: list[Struct]) -> float:
    """Fraction of structs with at least one padding byte (Figure 3's
    headline: 45.7 % for SPEC, 41.0 % for V8)."""
    if not structs:
        return 0.0
    padded = sum(1 for s in structs if layout_struct(s).has_padding)
    return padded / len(structs)


def describe(layout: StructLayout) -> str:
    """Render a layout as an ASCII memory map (examples/debugging)."""
    rows: list[str] = [f"struct {layout.name} {{  // size={layout.size}"]
    events: list[tuple[int, str]] = []
    for slot in layout.slots:
        events.append(
            (slot.offset, f"  [{slot.offset:4d}] {slot.ctype.name} {slot.name}")
        )
    for span in layout.paddings:
        events.append(
            (span.offset, f"  [{span.offset:4d}] <{span.size}B padding>")
        )
    rows.extend(text for _, text in sorted(events))
    rows.append("}")
    return "\n".join(rows)
