"""Process runtime: the full-system view a califormed program runs in.

Binds the pieces of Section 3 into one object:

* the :class:`~repro.cpu.core.Cpu` and its memory hierarchy,
* the compiler pass (insertion policy applied per struct),
* the clean-before-use heap,
* a dirty-before-use stack (Section 6.1),
* whitelisted ``memcpy``/IO helpers (Section 6.3).

This is the public API the examples and the security experiments program
against: declare structs, allocate instances, read and write fields, and
watch out-of-bounds or use-after-free accesses raise precise privileged
exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import CaliformsError
from repro.cpu.core import Cpu
from repro.cpu.isa import load as load_instruction
from repro.cpu.isa import store as store_instruction
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.softstack.allocator import Allocation, CaliformsHeap, HeapError
from repro.softstack.compiler import (
    CompilerConfig,
    CompilerPass,
    stack_frame_requests,
)
from repro.softstack.ctypes_model import Array, Struct
from repro.softstack.insertion import CaliformedLayout, Policy


@dataclass
class ObjectHandle:
    """A live, typed heap object."""

    allocation: Allocation
    layout: CaliformedLayout
    alive: bool = True

    @property
    def address(self) -> int:
        return self.allocation.address


@dataclass
class StackFrame:
    """One active stack frame with its local objects."""

    base: int
    size: int
    locals: dict[str, tuple[CaliformedLayout, int]]


class Process:
    """A simulated process running with Califorms protection."""

    def __init__(
        self,
        policy: Policy = Policy.INTELLIGENT,
        seed: int = 0,
        min_bytes: int = 1,
        max_bytes: int = 7,
        heap_base: int = 0x100000,
        heap_size: int = 1 << 18,
        stack_base: int = 0x7F0000,
        stack_size: int = 1 << 16,
        hierarchy_config: HierarchyConfig | None = None,
    ):
        self.cpu = Cpu(MemoryHierarchy(hierarchy_config))
        self.compiler = CompilerPass(
            CompilerConfig(policy=policy, seed=seed, min_bytes=min_bytes,
                           max_bytes=max_bytes)
        )
        self.heap = CaliformsHeap(
            self.cpu.hierarchy, base=heap_base, size=heap_size
        )
        self._stack_base = stack_base
        self._stack_limit = stack_base - stack_size
        self._stack_pointer = stack_base
        self._frames: list[StackFrame] = []
        self._layout_cache: dict[str, CaliformedLayout] = {}

    # -- type declarations -----------------------------------------------------

    def declare(self, struct: Struct) -> CaliformedLayout:
        """Register a struct; the insertion policy is applied once."""
        layout = self.compiler.transform(struct)
        self._layout_cache[struct.name] = layout
        return layout

    def layout_of(self, name: str) -> CaliformedLayout:
        try:
            return self._layout_cache[name]
        except KeyError:
            raise CaliformsError(f"struct {name!r} was never declared") from None

    # -- heap objects ------------------------------------------------------------

    def new(self, struct_or_name: Struct | str) -> ObjectHandle:
        """Allocate one instance of a declared struct on the heap."""
        if isinstance(struct_or_name, Struct):
            if struct_or_name.name not in self._layout_cache:
                self.declare(struct_or_name)
            name = struct_or_name.name
        else:
            name = struct_or_name
        layout = self.layout_of(name)
        allocation = self.heap.malloc(layout)
        return ObjectHandle(allocation, layout)

    def delete(self, handle: ObjectHandle) -> None:
        """Free a heap object (enters quarantine, data re-blacklisted)."""
        if not handle.alive:
            raise HeapError("double free detected by runtime handle")
        self.heap.free(handle.allocation)
        handle.alive = False

    # -- typed accesses -------------------------------------------------------------

    def field_address(self, handle: ObjectHandle, field_name: str, index: int = 0) -> int:
        """Absolute address of a field (optionally an array element)."""
        layout = handle.layout
        offset = layout.offset_of(field_name)
        ctype = layout.base.struct.field(field_name).ctype
        if index:
            if not isinstance(ctype, Array):
                raise CaliformsError(f"{field_name} is not an array")
            offset += index * ctype.element.size
        return handle.address + offset

    def write_field(
        self, handle: ObjectHandle, field_name: str, data: bytes, index: int = 0
    ) -> None:
        """Store ``data`` into a field through the CPU (checked access)."""
        address = self.field_address(handle, field_name, index)
        self.cpu.execute(store_instruction(address, data))

    def read_field(
        self, handle: ObjectHandle, field_name: str, size: int | None = None,
        index: int = 0,
    ) -> bytes:
        """Load a field through the CPU (checked access)."""
        address = self.field_address(handle, field_name, index)
        if size is None:
            ctype = handle.layout.base.struct.field(field_name).ctype
            size = ctype.element.size if (isinstance(ctype, Array) and index) else ctype.size
        return self.cpu.execute(load_instruction(address, size))

    # -- raw accesses (what an attacker's arbitrary read/write uses) -----------------

    def raw_read(self, address: int, size: int) -> bytes:
        return self.cpu.execute(load_instruction(address, size))

    def raw_write(self, address: int, data: bytes) -> None:
        self.cpu.execute(store_instruction(address, data))

    # -- stack frames (dirty-before-use) -----------------------------------------------

    def push_frame(self, locals_spec: dict[str, Struct | str]) -> StackFrame:
        """Enter a frame with the given local objects.

        Stack memory starts regular; entering the frame *sets* each
        local's security spans (dirty-before-use, Section 6.1).
        """
        placed: dict[str, tuple[CaliformedLayout, int]] = {}
        cursor = self._stack_pointer
        for local_name, struct_or_name in locals_spec.items():
            if isinstance(struct_or_name, Struct):
                if struct_or_name.name not in self._layout_cache:
                    self.declare(struct_or_name)
                layout = self.layout_of(struct_or_name.name)
            else:
                layout = self.layout_of(struct_or_name)
            cursor -= layout.size
            cursor -= cursor % layout.align  # align downward
            placed[local_name] = (layout, cursor)
        if cursor < self._stack_limit:
            raise CaliformsError("simulated stack overflow")
        frame = StackFrame(
            base=cursor, size=self._stack_pointer - cursor, locals=placed
        )
        for request in stack_frame_requests(
            list(placed.values()), entering=True
        ):
            self.cpu.hierarchy.cform(request)
            self.heap.stats.cform_instructions += 1
        self._frames.append(frame)
        self._stack_pointer = cursor
        return frame

    def pop_frame(self) -> None:
        """Leave the top frame, unsetting its locals' security spans."""
        if not self._frames:
            raise CaliformsError("no frame to pop")
        frame = self._frames.pop()
        for request in stack_frame_requests(
            list(frame.locals.values()), entering=False
        ):
            self.cpu.hierarchy.cform(request)
            self.heap.stats.cform_instructions += 1
        self._stack_pointer = frame.base + frame.size

    def local_address(self, frame: StackFrame, local_name: str, field_name: str) -> int:
        layout, base = frame.locals[local_name]
        return base + layout.offset_of(field_name)

    # -- whitelisted library operations (Section 6.3) ------------------------------------

    def memcpy(self, destination: int, source: int, length: int) -> None:
        """A struct-to-struct copy as libc would do it: whitelisted.

        Security bytes read as zero and are skipped on the write side, so
        the copy neither faults nor disturbs the destination's blacklist.
        """
        with self.cpu.whitelisted():
            data, _ = self.cpu.hierarchy.load(source, length)
            for offset in range(length):
                address = destination + offset
                line_mask = self.cpu.hierarchy.secmask_of(address & ~63)
                if (line_mask >> (address & 63)) & 1:
                    continue  # do not overwrite a security byte
                self.cpu.hierarchy.store(address, data[offset : offset + 1])

    def io_write(self, address: int, length: int) -> bytes:
        """Read a buffer for I/O: the un-califorming boundary (Section 3).

        Returns the bytes as the other side of a pipe/socket would see
        them — security bytes materialise as zeros, no exception.
        """
        with self.cpu.whitelisted():
            data, _ = self.cpu.hierarchy.load(address, length)
        return data

    # -- statistics ------------------------------------------------------------------------

    def cform_instruction_count(self) -> int:
        return self.heap.stats.cform_instructions
