"""A C-like type system for the Califorms compiler pass.

The paper's software half reasons about C/C++ *compound data types*:
where the compiler must insert alignment padding, which fields are arrays
or pointers (the intelligent policy's targets), and how layouts change
when security bytes are added.  This module models exactly the part of the
C type system those decisions need:

* scalars with natural size/alignment for a typical LP64 target,
* pointers and function pointers (8-byte),
* fixed-length arrays,
* structs (recursively nestable) and unions.

Layout computation itself lives in :mod:`repro.softstack.layout`; the
tests cross-check it against CPython's ``ctypes``, which implements the
same ABI rules natively.

Bit-fields are deliberately unsupported: the paper notes byte-granular
blacklisting cannot protect individual bit-fields (Section 7.2,
"Bit-granularity Attacks") and treats composites of bit-fields as opaque.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union as TypingUnion


class ScalarKind(enum.Enum):
    """Coarse classification used by the insertion policies."""

    INTEGER = "integer"
    FLOATING = "floating"
    POINTER = "pointer"
    FUNCTION_POINTER = "function-pointer"


@dataclass(frozen=True)
class Scalar:
    """A primitive C type with natural size and alignment."""

    name: str
    size: int
    align: int
    kind: ScalarKind = ScalarKind.INTEGER

    def __post_init__(self) -> None:
        if self.size <= 0 or self.align <= 0:
            raise ValueError(f"{self.name}: size and alignment must be positive")
        if self.size % self.align != 0:
            raise ValueError(f"{self.name}: size must be a multiple of alignment")


# The LP64 primitive zoo (x86-64 SysV sizes, matching the paper's target).
CHAR = Scalar("char", 1, 1)
SIGNED_CHAR = Scalar("signed char", 1, 1)
UNSIGNED_CHAR = Scalar("unsigned char", 1, 1)
BOOL = Scalar("_Bool", 1, 1)
SHORT = Scalar("short", 2, 2)
UNSIGNED_SHORT = Scalar("unsigned short", 2, 2)
INT = Scalar("int", 4, 4)
UNSIGNED_INT = Scalar("unsigned int", 4, 4)
LONG = Scalar("long", 8, 8)
UNSIGNED_LONG = Scalar("unsigned long", 8, 8)
LONG_LONG = Scalar("long long", 8, 8)
FLOAT = Scalar("float", 4, 4, ScalarKind.FLOATING)
DOUBLE = Scalar("double", 8, 8, ScalarKind.FLOATING)
POINTER = Scalar("void *", 8, 8, ScalarKind.POINTER)
FUNCTION_POINTER = Scalar("void (*)()", 8, 8, ScalarKind.FUNCTION_POINTER)

#: Name → scalar, for corpus parsing and generators.
SCALARS_BY_NAME = {
    scalar.name: scalar
    for scalar in (
        CHAR,
        SIGNED_CHAR,
        UNSIGNED_CHAR,
        BOOL,
        SHORT,
        UNSIGNED_SHORT,
        INT,
        UNSIGNED_INT,
        LONG,
        UNSIGNED_LONG,
        LONG_LONG,
        FLOAT,
        DOUBLE,
        POINTER,
        FUNCTION_POINTER,
    )
}


@dataclass(frozen=True)
class Array:
    """A fixed-length C array."""

    element: "CType"
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("array length must be positive")

    @property
    def size(self) -> int:
        return self.element.size * self.length

    @property
    def align(self) -> int:
        return self.element.align

    @property
    def name(self) -> str:
        return f"{self.element.name}[{self.length}]"


@dataclass(frozen=True)
class Field:
    """One named member of a struct or union."""

    name: str
    ctype: "CType"


@dataclass(frozen=True)
class Struct:
    """A C struct; size/alignment follow the usual ABI rules."""

    name: str
    fields: tuple[Field, ...]

    def __post_init__(self) -> None:
        if not self.fields:
            raise ValueError(f"struct {self.name} must have at least one field")
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            raise ValueError(f"struct {self.name} has duplicate field names")

    @property
    def align(self) -> int:
        return max(field.ctype.align for field in self.fields)

    @property
    def size(self) -> int:
        # Offsets with natural alignment, then round the total up to the
        # struct's own alignment (trailing padding).
        offset = 0
        for member in self.fields:
            offset = align_up(offset, member.ctype.align)
            offset += member.ctype.size
        return align_up(offset, self.align)

    def field(self, name: str) -> Field:
        for member in self.fields:
            if member.name == name:
                return member
        raise KeyError(f"struct {self.name} has no field {name!r}")


@dataclass(frozen=True)
class CUnion:
    """A C union: all members at offset zero."""

    name: str
    fields: tuple[Field, ...]

    def __post_init__(self) -> None:
        if not self.fields:
            raise ValueError(f"union {self.name} must have at least one field")

    @property
    def align(self) -> int:
        return max(field.ctype.align for field in self.fields)

    @property
    def size(self) -> int:
        return align_up(max(f.ctype.size for f in self.fields), self.align)


CType = TypingUnion[Scalar, Array, Struct, CUnion]


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    remainder = value % alignment
    return value if remainder == 0 else value + alignment - remainder


def struct(name: str, *members: tuple[str, CType]) -> Struct:
    """Convenience constructor: ``struct("A", ("c", CHAR), ("i", INT))``."""
    return Struct(name, tuple(Field(n, t) for n, t in members))


def is_blacklist_target(ctype: CType) -> bool:
    """Whether the intelligent policy protects this field type.

    Section 2: "data types which are most prone to abuse by an attacker
    via overflow type accesses: (1) arrays and (2) data and function
    pointers."
    """
    if isinstance(ctype, Array):
        return True
    if isinstance(ctype, Scalar):
        return ctype.kind in (ScalarKind.POINTER, ScalarKind.FUNCTION_POINTER)
    return False


#: The paper's running example (Listing 1a).
LISTING_1_STRUCT_A = struct(
    "A",
    ("c", CHAR),
    ("i", INT),
    ("buf", Array(CHAR, 64)),
    ("fp", FUNCTION_POINTER),
    ("d", DOUBLE),
)
