"""The Califorms heap allocator (Section 6.1).

Implements the paper's *clean-before-use* heap discipline on top of the
simulated memory hierarchy:

* the whole arena is blanket-blacklisted when the heap is created
  ("unallocated memory remains filled with security bytes all the time");
* ``malloc`` carves a region and issues CFORMs that unset exactly the
  object's data bytes — intra-object security spans stay blacklisted;
* ``free`` issues CFORMs that re-set the data bytes (which also zeroes
  them, per Section 7.2), then parks the region in a **quarantine** FIFO
  so recently-freed memory is not immediately reused ("we do not
  reallocate recently freed regions until the heap is sufficiently
  consumed") — the temporal-safety half of the design;
* every CFORM issued is counted, because executing them is the dominant
  software overhead the paper measures (Figures 11/12).

The allocator is deliberately simple (first-fit over a sorted free list,
16-byte alignment like glibc) — allocation *policy* is not what the paper
evaluates; allocation *events* are.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.exceptions import CaliformsError, ConfigurationError
from repro.memory.hierarchy import MemoryHierarchy
from repro.softstack.compiler import (
    allocation_requests,
    blanket_requests,
    free_requests,
)
from repro.softstack.insertion import CaliformedLayout
from repro.softstack.ctypes_model import align_up

#: glibc-style minimum allocation alignment.
MALLOC_ALIGN = 16


class HeapError(CaliformsError):
    """Misuse of the simulated heap (OOM, double free, bad pointer)."""


@dataclass(frozen=True)
class Allocation:
    """A live heap object: its address and (optional) califormed layout."""

    address: int
    size: int
    layout: CaliformedLayout | None = None

    @property
    def end(self) -> int:
        return self.address + self.size


@dataclass
class HeapStats:
    """Event counters the timing model consumes."""

    mallocs: int = 0
    frees: int = 0
    cform_instructions: int = 0
    bytes_allocated: int = 0
    security_bytes_live: int = 0
    quarantine_releases: int = 0


@dataclass
class CaliformsHeap:
    """A quarantining, clean-before-use heap over the memory hierarchy."""

    hierarchy: MemoryHierarchy
    base: int = 0x100000
    size: int = 1 << 20
    quarantine_fraction: float = 0.25
    use_non_temporal_cform: bool = False
    stats: HeapStats = field(default_factory=HeapStats)

    def __post_init__(self) -> None:
        if self.base % 64 != 0 or self.size % 64 != 0:
            raise ConfigurationError("heap base and size must be line aligned")
        if not 0.0 <= self.quarantine_fraction < 1.0:
            raise ConfigurationError("quarantine fraction must be in [0, 1)")
        self._free_list: list[tuple[int, int]] = [(self.base, self.size)]
        self._quarantine: deque[tuple[int, int]] = deque()
        self._quarantined_bytes = 0
        self._live: dict[int, Allocation] = {}
        self._carved: dict[int, int] = {}  # address -> rounded region size
        # Clean-before-use: blanket-blacklist the whole arena up front.
        for request in blanket_requests(self.base, self.size, blacklist=True):
            self._issue(request)

    # -- allocation -----------------------------------------------------------

    def malloc(self, layout: CaliformedLayout) -> Allocation:
        """Allocate one object with the given califormed layout."""
        address = self._carve(layout.size)
        for request in allocation_requests(layout, address):
            self._issue(request)
        allocation = Allocation(address, layout.size, layout)
        self._live[address] = allocation
        self.stats.mallocs += 1
        self.stats.bytes_allocated += layout.size
        self.stats.security_bytes_live += layout.security_bytes
        return allocation

    def malloc_raw(self, size: int) -> Allocation:
        """Allocate a layout-less buffer (all bytes are data)."""
        if size <= 0:
            raise HeapError("allocation size must be positive")
        address = self._carve(size)
        for request in blanket_requests(address, size, blacklist=False):
            self._issue(request)
        allocation = Allocation(address, size)
        self._live[address] = allocation
        self.stats.mallocs += 1
        self.stats.bytes_allocated += size
        return allocation

    def free(self, allocation: Allocation) -> None:
        """Free an object: re-blacklist (and zero) its data bytes, then
        quarantine the region."""
        live = self._live.pop(allocation.address, None)
        if live is None:
            raise HeapError(
                f"free of unknown or already-freed pointer 0x{allocation.address:x}"
            )
        if live.layout is not None:
            requests = free_requests(live.layout, live.address)
            self.stats.security_bytes_live -= live.layout.security_bytes
        else:
            requests = blanket_requests(live.address, live.size, blacklist=True)
        for request in requests:
            self._issue(request)
        self.stats.frees += 1
        carved = self._carved.pop(live.address)
        self._quarantine.append((live.address, carved))
        self._quarantined_bytes += carved
        self._release_quarantine_if_needed()

    # -- introspection ----------------------------------------------------------

    def live_allocations(self) -> list[Allocation]:
        return sorted(self._live.values(), key=lambda a: a.address)

    def quarantined_bytes(self) -> int:
        return self._quarantined_bytes

    def free_bytes(self) -> int:
        return sum(size for _, size in self._free_list)

    # -- internals ---------------------------------------------------------------

    def _issue(self, request) -> None:
        if self.use_non_temporal_cform:
            self.hierarchy.cform_non_temporal(request)
        else:
            self.hierarchy.cform(request)
        self.stats.cform_instructions += 1

    def _carve(self, size: int) -> int:
        """First-fit carve of an aligned region from the free list."""
        needed = align_up(size, MALLOC_ALIGN)
        for index, (start, length) in enumerate(self._free_list):
            aligned = align_up(start, MALLOC_ALIGN)
            waste = aligned - start
            if length - waste < needed:
                continue
            remaining = length - waste - needed
            replacement: list[tuple[int, int]] = []
            if waste:
                replacement.append((start, waste))
            if remaining:
                replacement.append((aligned + needed, remaining))
            self._free_list[index : index + 1] = replacement
            self._carved[aligned] = needed
            return aligned
        # Out of easy space: force quarantine drain once, then retry.
        if self._quarantine:
            self._drain_quarantine()
            return self._carve(size)
        raise HeapError(
            f"out of memory: need {needed} bytes, "
            f"{self.free_bytes()} free / {self._quarantined_bytes} quarantined"
        )

    def _release_quarantine_if_needed(self) -> None:
        limit = int(self.size * self.quarantine_fraction)
        while self._quarantined_bytes > limit:
            self._release_one()

    def _drain_quarantine(self) -> None:
        while self._quarantine:
            self._release_one()

    def _release_one(self) -> None:
        address, size = self._quarantine.popleft()
        self._quarantined_bytes -= size
        self._free_list.append((address, size))
        self._free_list.sort()
        self._coalesce()
        self.stats.quarantine_releases += 1

    def _coalesce(self) -> None:
        merged: list[tuple[int, int]] = []
        for start, length in self._free_list:
            if merged and merged[-1][0] + merged[-1][1] == start:
                merged[-1] = (merged[-1][0], merged[-1][1] + length)
            else:
                merged.append((start, length))
        self._free_list = merged
