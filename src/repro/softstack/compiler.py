"""The Califorms "compiler pass": type transforms plus CFORM planning.

Stands in for the paper's LLVM source-to-source pass (Section 6.2).  It
consumes struct declarations, applies the configured insertion policy, and
emits the runtime's ``CFORM`` plans:

* **allocation plan** — unset the *data* bytes of the object's footprint
  (clean-before-use: the heap arena is blanket-blacklisted, so making an
  object live means whitelisting exactly its data bytes; the security-byte
  spans simply stay blacklisted);
* **free plan** — re-set those same data bytes (the freed region returns
  to fully-blacklisted, and the hardware zeroes the bytes, giving the
  Section 6.1 temporal-safety semantics).

Driving the plans through the strict Table 1 K-map has a pleasant side
effect: double frees and overlapping allocations fault in simulation, just
as they would trap on real Califorms hardware.

One ``CFORM`` covers one cache line (64 B), so the plan for an object is
one request per line it overlaps — exactly the cost model the paper's
software overhead measurements emulate with one dummy store per line.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core import bitvector as bv
from repro.core.cform import CformRequest
from repro.softstack.ctypes_model import Struct
from repro.softstack.insertion import (
    CaliformedLayout,
    Policy,
    apply_policy,
    fixed_full,
)
from repro.softstack.layout import StructLayout, layout_struct


@dataclass
class CompilerConfig:
    """User-facing knobs of the pass (policy and span-size range)."""

    policy: Policy = Policy.INTELLIGENT
    min_bytes: int = 1
    max_bytes: int = 7
    seed: int = 0


@dataclass
class CompilerPass:
    """Transforms struct declarations under one configuration.

    A fresh :class:`random.Random` seeded from ``config.seed`` plus the
    struct name keeps layouts stable per struct while still varying across
    structs and across differently-seeded "binaries".
    """

    config: CompilerConfig = field(default_factory=CompilerConfig)

    def transform(self, struct: Struct) -> CaliformedLayout:
        """Apply the configured policy to one struct."""
        natural = layout_struct(struct)
        rng = random.Random(f"{self.config.seed}:{struct.name}")
        return apply_policy(
            natural,
            self.config.policy,
            rng,
            self.config.min_bytes,
            self.config.max_bytes,
        )

    def transform_fixed(self, struct: Struct, pad_bytes: int) -> CaliformedLayout:
        """The Figure 4 fixed-padding transform."""
        return fixed_full(layout_struct(struct), pad_bytes)

    def transform_all(self, structs: list[Struct]) -> dict[str, CaliformedLayout]:
        return {s.name: self.transform(s) for s in structs}

    @staticmethod
    def natural_layouts(structs: list[Struct]) -> list[StructLayout]:
        """Un-transformed layouts (the Figure 3 static census input)."""
        return [layout_struct(s) for s in structs]


# -- CFORM planning ----------------------------------------------------------


def _per_line_masks(base_address: int, offsets: list[int]) -> dict[int, int]:
    """Group absolute byte offsets into per-line 64-bit masks."""
    masks: dict[int, int] = {}
    for offset in offsets:
        address = base_address + offset
        line = address & ~(bv.LINE_SIZE - 1)
        masks[line] = masks.get(line, 0) | bv.bit(address - line)
    return masks


def allocation_requests(
    layout: CaliformedLayout, base_address: int
) -> list[CformRequest]:
    """CFORMs that make an object live inside a blacklisted arena.

    Unsets the object's data bytes; spans stay blacklisted.  One request
    per overlapped cache line.
    """
    masks = _per_line_masks(base_address, layout.data_byte_offsets)
    return [
        CformRequest(line, attributes=0, mask=mask)
        for line, mask in sorted(masks.items())
    ]


def free_requests(layout: CaliformedLayout, base_address: int) -> list[CformRequest]:
    """CFORMs that return a dead object's data bytes to the blacklist."""
    masks = _per_line_masks(base_address, layout.data_byte_offsets)
    return [
        CformRequest(line, attributes=mask, mask=mask)
        for line, mask in sorted(masks.items())
    ]


def blanket_requests(
    base_address: int, size: int, blacklist: bool
) -> list[CformRequest]:
    """CFORMs that (un)blacklist a raw byte range wholesale.

    Used for arena initialisation (``blacklist=True`` over fresh memory)
    and for raw, layout-less allocations.
    """
    masks = _per_line_masks(base_address, list(range(size)))
    if blacklist:
        return [
            CformRequest(line, attributes=mask, mask=mask)
            for line, mask in sorted(masks.items())
        ]
    return [
        CformRequest(line, attributes=0, mask=mask)
        for line, mask in sorted(masks.items())
    ]


def stack_frame_requests(
    layouts: list[tuple[CaliformedLayout, int]], *, entering: bool
) -> list[CformRequest]:
    """CFORMs for a stack frame under the dirty-before-use discipline.

    The stack starts all-regular; frame entry *sets* each local object's
    security spans, frame exit *unsets* them (Section 6.1: stack uses
    dirty-before-use because use-after-return attacks are rarer).

    ``layouts`` pairs each local's califormed layout with its absolute
    base address.
    """
    offsets_by_line: dict[int, int] = {}
    for layout, base_address in layouts:
        span_offsets = sorted(layout.security_offsets_set())
        for line, mask in _per_line_masks(base_address, span_offsets).items():
            offsets_by_line[line] = offsets_by_line.get(line, 0) | mask
    if entering:
        return [
            CformRequest(line, attributes=mask, mask=mask)
            for line, mask in sorted(offsets_by_line.items())
        ]
    return [
        CformRequest(line, attributes=0, mask=mask)
        for line, mask in sorted(offsets_by_line.items())
    ]
