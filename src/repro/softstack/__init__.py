"""Software half of Califorms: types, layout, policies, allocator, runtime.

* :mod:`repro.softstack.ctypes_model` — C-like type system.
* :mod:`repro.softstack.layout` — natural-alignment layout + padding census.
* :mod:`repro.softstack.insertion` — opportunistic / full / intelligent
  security-byte insertion (Listing 1) plus the Figure 4 fixed-padding pass.
* :mod:`repro.softstack.compiler` — struct transformation and CFORM plans.
* :mod:`repro.softstack.allocator` — clean-before-use quarantining heap.
* :mod:`repro.softstack.runtime` — the full simulated process.
"""

from repro.softstack.allocator import Allocation, CaliformsHeap, HeapError, HeapStats
from repro.softstack.compiler import (
    CompilerConfig,
    CompilerPass,
    allocation_requests,
    blanket_requests,
    free_requests,
    stack_frame_requests,
)
from repro.softstack.ctypes_model import (
    CHAR,
    DOUBLE,
    FLOAT,
    FUNCTION_POINTER,
    INT,
    LISTING_1_STRUCT_A,
    LONG,
    POINTER,
    SHORT,
    Array,
    CUnion,
    Field,
    Scalar,
    ScalarKind,
    Struct,
    align_up,
    is_blacklist_target,
    struct,
)
from repro.softstack.insertion import (
    CaliformedLayout,
    Policy,
    SecuritySpan,
    apply_policy,
    fixed_full,
    full,
    intelligent,
    opportunistic,
)
from repro.softstack.layout import (
    StructLayout,
    densities,
    describe,
    fraction_with_padding,
    layout_struct,
)
from repro.softstack.runtime import ObjectHandle, Process, StackFrame

__all__ = [
    "CHAR",
    "SHORT",
    "INT",
    "LONG",
    "FLOAT",
    "DOUBLE",
    "POINTER",
    "FUNCTION_POINTER",
    "Scalar",
    "ScalarKind",
    "Array",
    "Field",
    "Struct",
    "CUnion",
    "struct",
    "align_up",
    "is_blacklist_target",
    "LISTING_1_STRUCT_A",
    "StructLayout",
    "layout_struct",
    "densities",
    "fraction_with_padding",
    "describe",
    "Policy",
    "SecuritySpan",
    "CaliformedLayout",
    "opportunistic",
    "full",
    "intelligent",
    "fixed_full",
    "apply_policy",
    "CompilerPass",
    "CompilerConfig",
    "allocation_requests",
    "free_requests",
    "blanket_requests",
    "stack_frame_requests",
    "CaliformsHeap",
    "HeapError",
    "HeapStats",
    "Allocation",
    "Process",
    "ObjectHandle",
    "StackFrame",
]
