"""Bit-vector helpers for Califorms cache-line metadata.

The L1 data cache keeps one metadata bit per byte of a 64-byte cache line
(Section 5.1 of the paper, the *califorms-bitvector* format).  Throughout the
library that per-byte metadata is represented as a plain Python integer used
as a 64-bit mask: bit ``i`` set means byte ``i`` of the line is a *security
byte* (blacklisted).

All helpers here are pure functions on integers so they can be reused by the
sentinel codec, the CFORM instruction semantics, the caches and the tests.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Iterator

#: Number of data bytes in a cache line (fixed by the paper's design).
LINE_SIZE = 64

#: Mask covering every byte of a cache line.
FULL_MASK = (1 << LINE_SIZE) - 1

#: Number of bits needed to address a byte within a line (Section 5.2:
#: "we only need six bits").
ADDR_BITS = 6

#: Mask extracting the least-significant six bits of a byte, the portion the
#: sentinel scheme compares against (Figure 9 feeds "the least 6-bits of each
#: byte" to the comparators).
LOW6_MASK = (1 << ADDR_BITS) - 1


def bit(index: int) -> int:
    """Return a mask with only ``index`` set.

    >>> bit(0), bit(63)
    (1, 9223372036854775808)
    """
    _check_index(index)
    return 1 << index


def test_bit(mask: int, index: int) -> bool:
    """Return ``True`` when bit ``index`` is set in ``mask``."""
    _check_index(index)
    return bool((mask >> index) & 1)


def set_bit(mask: int, index: int) -> int:
    """Return ``mask`` with bit ``index`` set."""
    _check_index(index)
    return mask | (1 << index)


def clear_bit(mask: int, index: int) -> int:
    """Return ``mask`` with bit ``index`` cleared."""
    _check_index(index)
    return mask & ~(1 << index)


def popcount(mask: int) -> int:
    """Return the number of set bits in ``mask``."""
    return mask.bit_count()


def iter_set_bits(mask: int) -> Iterator[int]:
    """Yield the indices of set bits in ``mask``, ascending.

    >>> list(iter_set_bits(0b1010))
    [1, 3]
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


#: Per-byte-value tuple of set-bit indices (0..7), for table-driven scans.
_BYTE_INDICES: tuple[tuple[int, ...], ...] = tuple(
    tuple(index for index in range(8) if (value >> index) & 1)
    for value in range(256)
)

#: Per-byte-value expansion of a bit mask into a byte-wise 0xFF mask: bit
#: ``i`` of the input becomes byte ``i`` (0xFF) of the 64-bit output.
_BYTE_EXPAND: tuple[int, ...] = tuple(
    sum(0xFF << (8 * index) for index in range(8) if (value >> index) & 1)
    for value in range(256)
)


def indices_from_mask(mask: int) -> list[int]:
    """Return the ascending list of set-bit indices of ``mask``.

    Table-driven: one lookup per non-zero mask byte instead of one loop
    iteration per set bit.
    """
    out: list[int] = []
    base = 0
    while mask:
        chunk = mask & 0xFF
        if chunk:
            out.extend(index + base for index in _BYTE_INDICES[chunk])
        mask >>= 8
        base += 8
    return out


@lru_cache(maxsize=4096)
def expand_mask_to_bytes(mask: int) -> int:
    """Expand a 64-bit per-byte mask into a 512-bit per-*bit* mask.

    Bit ``i`` of ``mask`` becomes the full byte ``0xFF`` at byte position
    ``i`` of the result (little-endian bit numbering, matching
    ``int.from_bytes(line, "little")``).  This is the zeroing mask the
    fast paths AND against a whole line held as one integer.

    >>> hex(expand_mask_to_bytes(0b101))
    '0xff00ff'
    """
    out = 0
    shift = 0
    while mask:
        chunk = mask & 0xFF
        if chunk:
            out |= _BYTE_EXPAND[chunk] << shift
        mask >>= 8
        shift += 64
    return out


def mask_from_indices(indices: Iterable[int]) -> int:
    """Build a mask from an iterable of byte indices.

    >>> bin(mask_from_indices([0, 2]))
    '0b101'
    """
    mask = 0
    for index in indices:
        _check_index(index)
        mask |= 1 << index
    return mask


def range_mask(offset: int, size: int) -> int:
    """Return a mask covering ``size`` bytes starting at ``offset``.

    The range must lie within a single cache line.

    >>> bin(range_mask(1, 3))
    '0b1110'
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if offset < 0 or offset + size > LINE_SIZE:
        raise ValueError(
            f"byte range [{offset}, {offset + size}) exceeds the "
            f"{LINE_SIZE}-byte cache line"
        )
    return ((1 << size) - 1) << offset


def invert(mask: int) -> int:
    """Return the complement of ``mask`` within the 64-byte line."""
    return ~mask & FULL_MASK


def low6(byte_value: int) -> int:
    """Return the least-significant six bits of a byte value.

    This is the portion of each byte the sentinel machinery inspects.
    """
    return byte_value & LOW6_MASK


def _check_index(index: int) -> None:
    if not 0 <= index < LINE_SIZE:
        raise ValueError(
            f"byte index {index} outside the {LINE_SIZE}-byte cache line"
        )
