"""Core Califorms primitives: line formats, the sentinel codec and CFORM.

This package is the paper's primary contribution in library form:

* :mod:`repro.core.bitvector` — 64-bit per-byte metadata helpers.
* :mod:`repro.core.line_formats` — the natural / califorms-bitvector /
  califorms-sentinel line representations (Figures 1, 5, 7).
* :mod:`repro.core.sentinel` — the L1↔L2 conversion (Algorithms 1–2).
* :mod:`repro.core.cform` — the ``CFORM`` instruction K-map (Table 1).
* :mod:`repro.core.variants` — Appendix A's califorms-4B/-1B formats.
* :mod:`repro.core.exceptions` — the privileged Califorms exception model.
"""

from repro.core.bitvector import (
    FULL_MASK,
    LINE_SIZE,
    indices_from_mask,
    mask_from_indices,
    range_mask,
)
from repro.core.cform import CformRequest, apply_cform, apply_cform_mask
from repro.core.exceptions import (
    AccessKind,
    CaliformsError,
    CaliformsException,
    CformUsageError,
    ConfigurationError,
    ExceptionRecord,
    SecurityByteAccess,
    SentinelNotFoundError,
)
from repro.core.line_formats import BitvectorLine, SentinelLine
from repro.core.sentinel import decode, encode, find_sentinel, roundtrip
from repro.core.variants import (
    Califorms1BLine,
    Califorms4BLine,
    decode_1b,
    decode_4b,
    encode_1b,
    encode_4b,
)

__all__ = [
    "LINE_SIZE",
    "FULL_MASK",
    "mask_from_indices",
    "indices_from_mask",
    "range_mask",
    "BitvectorLine",
    "SentinelLine",
    "encode",
    "decode",
    "roundtrip",
    "find_sentinel",
    "CformRequest",
    "apply_cform",
    "apply_cform_mask",
    "AccessKind",
    "ExceptionRecord",
    "CaliformsError",
    "CaliformsException",
    "SecurityByteAccess",
    "CformUsageError",
    "ConfigurationError",
    "SentinelNotFoundError",
    "Califorms4BLine",
    "Califorms1BLine",
    "encode_4b",
    "decode_4b",
    "encode_1b",
    "decode_1b",
]
