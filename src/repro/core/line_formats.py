"""Cache-line formats used across the Califorms memory hierarchy.

Three views of the same 64 data bytes exist in the system (Figure 1):

``natural``
    A line with no security bytes.  Stored identically at every level.

``califorms-bitvector`` (:class:`BitvectorLine`)
    The L1 data-cache format (Section 5.1, Figure 5): the 64 data bytes kept
    in their natural positions plus a 64-bit vector marking security bytes.
    This is the *logical* view of a line — data plus blacklist — and the rest
    of the library manipulates it directly.

``califorms-sentinel`` (:class:`SentinelLine`)
    The L2-and-beyond format (Section 5.2, Figure 7): exactly 64 stored bytes
    plus a single "line califormed?" bit.  The header inside the first up-to
    four bytes encodes where the security bytes are; displaced data is parked
    inside security-byte slots.  :mod:`repro.core.sentinel` converts between
    the two formats (the fill/spill modules of Figures 8 and 9).

Security bytes have no architectural data: loads from them return zero
(Section 7.2's side-channel argument) and the library normalises their
stored value to zero so that conversions are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import bitvector as bv
from repro.core.exceptions import (
    AccessKind,
    ExceptionRecord,
    SecurityByteAccess,
)

LINE_SIZE = bv.LINE_SIZE


def _check_line_bytes(data: bytes | bytearray) -> None:
    if len(data) != LINE_SIZE:
        raise ValueError(
            f"cache line must be exactly {LINE_SIZE} bytes, got {len(data)}"
        )


def normalize_security_bytes(data: bytes, secmask: int) -> bytes:
    """Return ``data`` with every security-byte position forced to zero.

    The value stored in a blacklisted slot is architecturally invisible, so
    the library keeps it at the canonical zero (the value the paper's design
    returns to speculative loads, and the value memory is zeroed to on
    deallocation).

    Operates on the whole line as one integer against a precomputed
    zeroing mask rather than per-byte; the pure per-byte version is
    retained as :func:`normalize_security_bytes_reference` and the two are
    differentially tested in ``tests/core/test_fastpath_equivalence.py``.
    """
    _check_line_bytes(data)
    if secmask == 0:
        return bytes(data)
    zeroing = bv.expand_mask_to_bytes(secmask)
    value = int.from_bytes(data, "little")
    if value & zeroing == 0:
        return bytes(data)
    return (value & ~zeroing).to_bytes(LINE_SIZE, "little")


def normalize_security_bytes_reference(data: bytes, secmask: int) -> bytes:
    """Pure per-byte reference for :func:`normalize_security_bytes`."""
    _check_line_bytes(data)
    if secmask == 0:
        return bytes(data)
    out = bytearray(data)
    for index in bv.iter_set_bits(secmask):
        out[index] = 0
    return bytes(out)


def security_bytes_clean(data: bytes | bytearray, secmask: int) -> bool:
    """Whether every security-byte position of ``data`` already holds zero."""
    if secmask == 0:
        return True
    return int.from_bytes(data, "little") & bv.expand_mask_to_bytes(secmask) == 0


@dataclass
class BitvectorLine:
    """A cache line in the L1 *califorms-bitvector* format.

    ``data``
        The 64 data bytes in natural positions.  Security-byte positions
        always hold zero (see :func:`normalize_security_bytes`).
    ``secmask``
        64-bit integer; bit ``i`` set means byte ``i`` is a security byte.
    """

    data: bytearray
    secmask: int = 0

    def __post_init__(self) -> None:
        _check_line_bytes(self.data)
        if not 0 <= self.secmask <= bv.FULL_MASK:
            raise ValueError(f"secmask 0x{self.secmask:x} is not a 64-bit mask")
        if not isinstance(self.data, bytearray):
            self.data = bytearray(self.data)
        # Skip the normalising copy when every security slot already holds
        # zero — the overwhelmingly common case for lines produced by the
        # codec, the caches and the runtime.
        if self.secmask and not security_bytes_clean(self.data, self.secmask):
            self.data[:] = normalize_security_bytes(bytes(self.data), self.secmask)

    # -- constructors -----------------------------------------------------

    @classmethod
    def natural(cls, data: bytes | None = None) -> "BitvectorLine":
        """Build a line with no security bytes (zero-filled by default)."""
        return cls(bytearray(data) if data is not None else bytearray(LINE_SIZE))

    @classmethod
    def trusted(cls, data: bytearray, secmask: int) -> "BitvectorLine":
        """Build a line from already-validated, already-normalized parts.

        Fast-path constructor for the codec and the caches: skips the
        ``__post_init__`` length/mask/normalisation checks.  The caller
        guarantees ``data`` is a 64-byte ``bytearray`` whose security
        positions are zero.
        """
        self = object.__new__(cls)
        self.data = data
        self.secmask = secmask
        return self

    def copy(self) -> "BitvectorLine":
        return BitvectorLine(bytearray(self.data), self.secmask)

    # -- queries -----------------------------------------------------------

    @property
    def is_califormed(self) -> bool:
        """Whether the line contains at least one security byte."""
        return self.secmask != 0

    def is_security(self, index: int) -> bool:
        """Whether byte ``index`` is blacklisted."""
        return bv.test_bit(self.secmask, index)

    def security_indices(self) -> list[int]:
        """Ascending indices of the line's security bytes."""
        return bv.indices_from_mask(self.secmask)

    def security_count(self) -> int:
        return bv.popcount(self.secmask)

    # -- architectural access (the Figure 6 hit path) ----------------------

    def load(
        self, offset: int, size: int, *, base_address: int = 0
    ) -> tuple[bytes, ExceptionRecord | None]:
        """Read ``size`` bytes at ``offset``; model the L1 hit path.

        Returns ``(value, record)``.  When the access overlaps security
        bytes, ``value`` contains zero in those positions (the
        pre-determined value of Section 5.1, avoiding a speculative side
        channel) and ``record`` carries the precise exception to be raised
        at commit.  ``record`` is ``None`` for clean accesses.
        """
        touched = bv.range_mask(offset, size) & self.secmask
        value = bytes(self.data[offset : offset + size])
        if not touched:
            return value, None
        record = ExceptionRecord(
            kind=AccessKind.LOAD,
            address=base_address + offset,
            byte_indices=tuple(bv.iter_set_bits(touched)),
            detail="load overlapped security bytes",
        )
        return value, record

    def store(
        self, offset: int, value: bytes, *, base_address: int = 0
    ) -> ExceptionRecord | None:
        """Write ``value`` at ``offset``; model the L1 store path.

        A store overlapping security bytes reports an exception *before*
        committing (Section 5.1): the write is not performed and the record
        describing the violation is returned.  Clean stores are applied and
        return ``None``.
        """
        touched = bv.range_mask(offset, len(value)) & self.secmask
        if touched:
            return ExceptionRecord(
                kind=AccessKind.STORE,
                address=base_address + offset,
                byte_indices=tuple(bv.iter_set_bits(touched)),
                detail="store overlapped security bytes",
            )
        self.data[offset : offset + len(value)] = value
        return None

    def load_or_raise(self, offset: int, size: int, *, base_address: int = 0) -> bytes:
        """Like :meth:`load` but raise :class:`SecurityByteAccess` directly."""
        value, record = self.load(offset, size, base_address=base_address)
        if record is not None:
            raise SecurityByteAccess(record)
        return value

    def store_or_raise(
        self, offset: int, value: bytes, *, base_address: int = 0
    ) -> None:
        """Like :meth:`store` but raise :class:`SecurityByteAccess` directly."""
        record = self.store(offset, value, base_address=base_address)
        if record is not None:
            raise SecurityByteAccess(record)


@dataclass(frozen=True)
class SentinelLine:
    """A cache line in the L2+ *califorms-sentinel* format.

    ``raw``
        The 64 stored bytes.  For a califormed line these are the Figure 7
        encoding (header + relocated data + sentinel marks), otherwise the
        natural data bytes.
    ``califormed``
        The single metadata bit per line (kept in spare ECC bits in DRAM,
        Section 3).
    """

    raw: bytes
    califormed: bool = False

    def __post_init__(self) -> None:
        _check_line_bytes(self.raw)
        if not isinstance(self.raw, bytes):
            object.__setattr__(self, "raw", bytes(self.raw))

    @classmethod
    def natural(cls, data: bytes | None = None) -> "SentinelLine":
        """Build an un-califormed line (zero-filled by default)."""
        return cls(bytes(data) if data is not None else bytes(LINE_SIZE), False)

    @classmethod
    def trusted(cls, raw: bytes, califormed: bool) -> "SentinelLine":
        """Build a line from an already-validated 64-byte ``bytes`` object.

        Fast-path constructor for the codec: skips ``__post_init__``.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "raw", raw)
        object.__setattr__(self, "califormed", califormed)
        return self

    @property
    def metadata_bits(self) -> int:
        """Extra storage consumed by this format, in bits (always one)."""
        return 1
