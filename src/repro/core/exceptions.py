"""Exception model for the Califorms architecture.

The paper defines a single *privileged Califorms exception* (Section 4.2)
raised when:

* a load or store touches a security byte (a blacklisted location), or
* a ``CFORM`` instruction is misused (Table 1: setting a security byte that
  is already a security byte, or unsetting one from a regular byte).

The exception is precise and delivered to the next privilege level.  The
library mirrors that structure: :class:`CaliformsException` is the
architectural event, with subclasses distinguishing the cause.  Purely
host-side misuse of the library (bad arguments, impossible configurations)
raises :class:`CaliformsError` subclasses instead, so callers can tell
"the simulated program was caught doing something illegal" apart from
"the simulation itself was driven incorrectly".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CaliformsError(Exception):
    """Base class for host-side errors raised by the library itself."""


class ConfigurationError(CaliformsError):
    """A simulator or model was constructed with impossible parameters."""


class SentinelNotFoundError(CaliformsError):
    """No free 6-bit sentinel pattern exists.

    By the paper's counting argument (Section 5.2) this cannot happen for a
    line containing at least one security byte; it is raised defensively if
    the codec is driven with an all-regular line.
    """


class AccessKind(enum.Enum):
    """The architectural operation that triggered a Califorms exception."""

    LOAD = "load"
    STORE = "store"
    CFORM_SET = "cform-set"
    CFORM_UNSET = "cform-unset"


@dataclass(frozen=True)
class ExceptionRecord:
    """A precise record of one Califorms exception.

    The paper assumes "the faulting address is passed in an existing
    register so that it can be used for reporting/investigation purposes"
    (Section 6.3); this record is that register file snapshot.
    """

    kind: AccessKind
    address: int
    byte_indices: tuple[int, ...] = field(default_factory=tuple)
    detail: str = ""

    def describe(self) -> str:
        """Return a one-line human-readable description of the event."""
        where = f"0x{self.address:x}"
        bytes_part = (
            f" bytes {list(self.byte_indices)}" if self.byte_indices else ""
        )
        tail = f" ({self.detail})" if self.detail else ""
        return f"califorms {self.kind.value} violation at {where}{bytes_part}{tail}"


class CaliformsException(Exception):
    """The privileged, precise Califorms exception (Section 4.2).

    Raised by the simulated hardware when the running program touches a
    security byte or misuses ``CFORM``.  The OS model can intercept it and
    decide (based on the whitelist mask registers) whether to suppress it.
    """

    def __init__(self, record: ExceptionRecord):
        super().__init__(record.describe())
        self.record = record

    @property
    def kind(self) -> AccessKind:
        return self.record.kind

    @property
    def address(self) -> int:
        return self.record.address


class SecurityByteAccess(CaliformsException):
    """A load or store touched one or more security bytes."""


class CformUsageError(CaliformsException):
    """A ``CFORM`` instruction violated the Table 1 K-map.

    Setting an already-set security byte, or unsetting a regular byte.
    """
