"""Semantics of the ``CFORM`` instruction (Section 4.1, Table 1).

``CFORM R1, R2, R3`` califorms one 64-byte, line-aligned region:

* ``R1`` — virtual address of the 64 B chunk (must be line aligned),
* ``R2`` — attribute bit vector: bit ``i`` = 1 requests byte ``i`` become a
  security byte, 0 requests it become a regular byte,
* ``R3`` — mask bit vector: bit ``i`` = 1 allows byte ``i`` to change, 0
  leaves it untouched ("Don't Care" in the K-map).

Table 1 K-map, as reconstructed from the paper's prose ("we throw a
privileged Califorms exception when the CFORM instruction tries to set a
security byte to an existing security byte location, and unset a security
byte from a normal byte"):

================  ===============  ==============  ==============
initial state     masked out        unset, allowed  set, allowed
================  ===============  ==============  ==============
regular byte      regular byte     **exception**   security byte
security byte     security byte    regular byte    **exception**
================  ===============  ==============  ==============

The instruction behaves like a store in the pipeline (write-allocate fetch
into L1, then metadata manipulation); the LSQ interaction lives in
:mod:`repro.cpu.lsq`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import bitvector as bv
from repro.core.exceptions import (
    AccessKind,
    CformUsageError,
    ExceptionRecord,
)
from repro.core.line_formats import BitvectorLine


@dataclass(frozen=True)
class CformRequest:
    """Operand bundle for one ``CFORM`` execution.

    ``line_address`` is the *byte* address of the target line and must be
    64-byte aligned, matching the ISA's "starting (cache aligned) address"
    requirement.
    """

    line_address: int
    attributes: int  # R2: 1 bit per byte, 1 = set security byte
    mask: int  # R3: 1 bit per byte, 1 = allow change

    def __post_init__(self) -> None:
        if self.line_address % bv.LINE_SIZE != 0:
            raise ValueError(
                f"CFORM target 0x{self.line_address:x} is not "
                f"{bv.LINE_SIZE}-byte aligned"
            )
        for name in ("attributes", "mask"):
            value = getattr(self, name)
            if not 0 <= value <= bv.FULL_MASK:
                raise ValueError(f"{name} 0x{value:x} is not a 64-bit vector")

    @classmethod
    def set_bytes(cls, line_address: int, indices) -> "CformRequest":
        """Request turning the given byte indices into security bytes."""
        mask = bv.mask_from_indices(indices)
        return cls(line_address, attributes=mask, mask=mask)

    @classmethod
    def unset_bytes(cls, line_address: int, indices) -> "CformRequest":
        """Request turning the given byte indices back into regular bytes."""
        mask = bv.mask_from_indices(indices)
        return cls(line_address, attributes=0, mask=mask)


def apply_cform_mask(secmask: int, request: CformRequest) -> int:
    """Apply the Table 1 K-map to a line's security mask.

    Returns the new security mask.  Raises :class:`CformUsageError` when the
    request sets an existing security byte or unsets a regular byte; the
    mask is left unmodified in that case (the exception is precise).
    """
    set_violations = request.attributes & request.mask & secmask
    unset_violations = (
        bv.invert(request.attributes) & request.mask & bv.invert(secmask)
    )
    if set_violations or unset_violations:
        kind = AccessKind.CFORM_SET if set_violations else AccessKind.CFORM_UNSET
        offenders = set_violations or unset_violations
        raise CformUsageError(
            ExceptionRecord(
                kind=kind,
                address=request.line_address,
                byte_indices=tuple(bv.iter_set_bits(offenders)),
                detail=(
                    "set on existing security byte"
                    if set_violations
                    else "unset on regular byte"
                ),
            )
        )
    return (secmask & bv.invert(request.mask)) | (
        request.attributes & request.mask
    )


def apply_cform(line: BitvectorLine, request: CformRequest) -> None:
    """Execute ``CFORM`` against an L1-resident line, in place.

    Newly blacklisted bytes are zeroed (the runtime zeroes deallocated
    regions, Section 7.2, and the hardware returns zero for security-byte
    loads, so the canonical stored value is zero).  Bytes returned to
    regular state also start at zero — the value the program observes until
    it overwrites them, consistent with the clean-before-use discipline.
    """
    new_mask = apply_cform_mask(line.secmask, request)
    changed = new_mask ^ line.secmask
    for index in bv.iter_set_bits(changed):
        line.data[index] = 0
    line.secmask = new_mask
