"""The califorms-sentinel codec: Algorithms 1 and 2 of the paper.

This module converts between the L1 *califorms-bitvector* view of a line
(64 data bytes + 64-bit security mask) and the L2+ *califorms-sentinel*
physical format (64 stored bytes + one metadata bit), exactly as the spill
and fill modules of Figures 8 and 9 do in hardware.

Encoding (Figure 7).  A califormed line repurposes its first up-to-four
bytes as a header:

======  ==============================================================
code    header layout (bits, least-significant first)
======  ==============================================================
``00``  1 security byte:   code(2) addr0(6)                — 1 byte
``01``  2 security bytes:  code(2) addr0(6) addr1(6)       — 2 bytes
``10``  3 security bytes:  code(2) addr0..addr2(6 each)    — 3 bytes
``11``  4+ security bytes: code(2) addr0..addr3(6 each)
        sentinel(6)                                        — 4 bytes
======  ==============================================================

The data bytes displaced by the header are parked inside security-byte
slots (which carry no data), and for the ``11`` case every security byte
beyond the fourth is marked by writing the *sentinel* — a six-bit pattern
chosen to differ from the low six bits of every regular byte on the line
(at most 63 regular bytes exist, so one of the 64 patterns is always free;
Section 5.2).

Header-displacement disambiguation.  Algorithm 1's prose ("store data of
1st 4 bytes in locations obtained in 8") under-specifies the case where
security bytes sit *inside* the header region: parking a regular byte there
would be overwritten by the header itself.  The number of regular bytes in
the header region always equals the number of listed security slots beyond
it, so this codec parks the i-th regular header byte in the i-th listed
security slot at-or-after the header (the assignment Figure 8's "Cross Bar"
must realise), and the fill path inverts the same mapping.  See DESIGN.md
"Spec-level disambiguations"; the property tests in
``tests/core/test_sentinel.py`` verify the round-trip for arbitrary lines.
"""

from __future__ import annotations

from repro.core import bitvector as bv
from repro.core.exceptions import SentinelNotFoundError
from repro.core.line_formats import (
    LINE_SIZE,
    BitvectorLine,
    SentinelLine,
    normalize_security_bytes,
)

#: Number of header bytes used for each count code (code = index).
HEADER_BYTES_FOR_CODE = (1, 2, 3, 4)

#: Security-byte counts above this use the sentinel ("4 or more").
MAX_LISTED = 4

#: Bit offset of the sentinel field within the 32-bit ``11`` header.
_SENTINEL_SHIFT = 2 + bv.ADDR_BITS * MAX_LISTED


def find_sentinel(data: bytes, secmask: int) -> int:
    """Choose a sentinel: a 6-bit pattern unused by any regular byte.

    Implements line 7 of Algorithm 1 ("scan least 6-bit of every byte to
    determine sentinel").  Only *regular* bytes constrain the choice — the
    paper's existence argument ("at most 63 unique values that non-security
    bytes can have") relies on excluding the security bytes, whose stored
    values are meaningless.

    Raises :class:`SentinelNotFoundError` if ``secmask`` is zero, because a
    line of 64 regular bytes can exhaust all 64 patterns.
    """
    if secmask == 0:
        raise SentinelNotFoundError(
            "a line with no security bytes may have no free 6-bit pattern; "
            "sentinels are only defined for califormed lines"
        )
    used = 0
    for index in range(LINE_SIZE):
        if not bv.test_bit(secmask, index):
            used |= 1 << bv.low6(data[index])
    for pattern in range(1 << bv.ADDR_BITS):
        if not (used >> pattern) & 1:
            return pattern
    raise SentinelNotFoundError(
        "no free 6-bit pattern among regular bytes; "
        "this is impossible for a califormed line"
    )  # pragma: no cover - unreachable by the counting argument


def _header_fields(secmask: int) -> tuple[int, list[int], int]:
    """Return ``(code, listed_addresses, header_len)`` for a mask."""
    indices = bv.indices_from_mask(secmask)
    count = len(indices)
    code = min(count, MAX_LISTED) - 1
    header_len = HEADER_BYTES_FOR_CODE[code]
    return code, indices[:MAX_LISTED], header_len


def _pack_header(code: int, listed: list[int], sentinel: int | None) -> bytes:
    """Pack the Figure 7 header into ``len(listed)`` little-endian bytes."""
    value = code
    for position, address in enumerate(listed):
        value |= address << (2 + bv.ADDR_BITS * position)
    if code == MAX_LISTED - 1:
        assert sentinel is not None
        value |= sentinel << _SENTINEL_SHIFT
    return value.to_bytes(HEADER_BYTES_FOR_CODE[code], "little")


def _unpack_header(raw: bytes) -> tuple[int, list[int], int | None, int]:
    """Inverse of :func:`_pack_header`; returns (code, listed, sentinel, len)."""
    code = raw[0] & 0b11
    header_len = HEADER_BYTES_FOR_CODE[code]
    value = int.from_bytes(raw[:header_len], "little")
    listed = [
        (value >> (2 + bv.ADDR_BITS * position)) & bv.LOW6_MASK
        for position in range(code + 1)
    ]
    sentinel = None
    if code == MAX_LISTED - 1:
        sentinel = (value >> _SENTINEL_SHIFT) & bv.LOW6_MASK
    return code, listed, sentinel, header_len


def _parking_assignment(
    listed: list[int], header_len: int, secmask: int
) -> list[tuple[int, int]]:
    """Pair each regular header byte with the security slot that parks it.

    Returns ``[(header_index, slot_index), ...]``.  Regular header bytes are
    taken in ascending order; parking slots are the listed security
    addresses at-or-after the header, also ascending.  The two lists always
    have equal length: every security byte inside the header region is
    necessarily among the listed (smallest) addresses.
    """
    regular_header = [
        index for index in range(header_len) if not bv.test_bit(secmask, index)
    ]
    parking_slots = [address for address in listed if address >= header_len]
    assert len(regular_header) == len(parking_slots), (
        "header displacement invariant broken: "
        f"{regular_header} vs {parking_slots}"
    )
    return list(zip(regular_header, parking_slots))


def encode(line: BitvectorLine) -> SentinelLine:
    """Spill a line from L1 to L2 format (Algorithm 1 / Figure 8).

    Lines with no security bytes pass through unchanged with the metadata
    bit clear (lines 1–3 of the algorithm).
    """
    if line.secmask == 0:
        return SentinelLine(bytes(line.data), califormed=False)

    data = normalize_security_bytes(bytes(line.data), line.secmask)
    code, listed, header_len = _header_fields(line.secmask)
    indices = bv.indices_from_mask(line.secmask)

    sentinel = None
    if code == MAX_LISTED - 1:
        sentinel = find_sentinel(data, line.secmask)

    out = bytearray(data)
    # Park the regular data displaced by the header inside security slots.
    for header_index, slot in _parking_assignment(listed, header_len, line.secmask):
        out[slot] = data[header_index]
    # Mark every security byte beyond the fourth with the sentinel.  Those
    # are all at index > listed[3] >= 3, i.e. outside the header.
    if sentinel is not None:
        for extra in indices[MAX_LISTED:]:
            out[extra] = sentinel
    out[:header_len] = _pack_header(code, listed, sentinel)
    return SentinelLine(bytes(out), califormed=True)


def decode(line: SentinelLine) -> BitvectorLine:
    """Fill a line from L2 format into L1 format (Algorithm 2 / Figure 9).

    Un-califormed lines pass through with an all-zero bit vector (lines
    1–3).  For califormed lines the security mask is reconstructed from the
    header (and, for the ``11`` code, the 60-comparator sentinel scan over
    bytes 4..63), parked data is restored to its natural position, and every
    security slot is zeroed (line 10: "set the new locations of
    byte[Addr[0-3]] to zero").
    """
    if not line.califormed:
        return BitvectorLine(bytearray(line.raw), 0)

    raw = line.raw
    code, listed, sentinel, header_len = _unpack_header(raw)
    secmask = bv.mask_from_indices(listed)
    if sentinel is not None:
        listed_set = set(listed)
        # Figure 9: only bytes 4..63 feed the sentinel comparators.
        for index in range(MAX_LISTED, LINE_SIZE):
            if index not in listed_set and bv.low6(raw[index]) == sentinel:
                secmask = bv.set_bit(secmask, index)

    out = bytearray(raw)
    for header_index, slot in _parking_assignment(listed, header_len, secmask):
        out[header_index] = raw[slot]
    # Any header byte that is itself a security byte carries no data.
    for index in range(header_len):
        if bv.test_bit(secmask, index):
            out[index] = 0
    return BitvectorLine(out, secmask)


def roundtrip(line: BitvectorLine) -> BitvectorLine:
    """Encode then decode a line; used by tests and sanity checks."""
    return decode(encode(line))
