"""The califorms-sentinel codec: Algorithms 1 and 2 of the paper.

This module converts between the L1 *califorms-bitvector* view of a line
(64 data bytes + 64-bit security mask) and the L2+ *califorms-sentinel*
physical format (64 stored bytes + one metadata bit), exactly as the spill
and fill modules of Figures 8 and 9 do in hardware.

Encoding (Figure 7).  A califormed line repurposes its first up-to-four
bytes as a header:

======  ==============================================================
code    header layout (bits, least-significant first)
======  ==============================================================
``00``  1 security byte:   code(2) addr0(6)                — 1 byte
``01``  2 security bytes:  code(2) addr0(6) addr1(6)       — 2 bytes
``10``  3 security bytes:  code(2) addr0..addr2(6 each)    — 3 bytes
``11``  4+ security bytes: code(2) addr0..addr3(6 each)
        sentinel(6)                                        — 4 bytes
======  ==============================================================

The data bytes displaced by the header are parked inside security-byte
slots (which carry no data), and for the ``11`` case every security byte
beyond the fourth is marked by writing the *sentinel* — a six-bit pattern
chosen to differ from the low six bits of every regular byte on the line
(at most 63 regular bytes exist, so one of the 64 patterns is always free;
Section 5.2).

Header-displacement disambiguation.  Algorithm 1's prose ("store data of
1st 4 bytes in locations obtained in 8") under-specifies the case where
security bytes sit *inside* the header region: parking a regular byte there
would be overwritten by the header itself.  The number of regular bytes in
the header region always equals the number of listed security slots beyond
it, so this codec parks the i-th regular header byte in the i-th listed
security slot at-or-after the header (the assignment Figure 8's "Cross Bar"
must realise), and the fill path inverts the same mapping.  See DESIGN.md
"Spec-level disambiguations"; the property tests in
``tests/core/test_sentinel.py`` verify the round-trip for arbitrary lines.

Fast paths.  The production :func:`encode`/:func:`decode` mirror the
hardware's *fixed-function* fill/spill modules: all per-mask decisions
(header layout, crossbar parking assignment, zeroing masks) are
precomputed once per distinct ``secmask`` into an LRU-memoized
:class:`_CodecPlan`, so converting a line with a previously seen layout
is one table lookup plus whole-line integer operations — no per-byte
Python loops.  The original loop-per-byte implementations are retained
verbatim as :func:`encode_reference` / :func:`decode_reference` /
:func:`find_sentinel_reference`; ``tests/core/test_fastpath_equivalence.py``
differentially verifies the fast paths are bit-identical to them.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core import bitvector as bv
from repro.core.exceptions import SentinelNotFoundError
from repro.core.line_formats import (
    LINE_SIZE,
    BitvectorLine,
    SentinelLine,
    normalize_security_bytes,
    security_bytes_clean,
)

#: Number of header bytes used for each count code (code = index).
HEADER_BYTES_FOR_CODE = (1, 2, 3, 4)

#: Security-byte counts above this use the sentinel ("4 or more").
MAX_LISTED = 4

#: Bit offset of the sentinel field within the 32-bit ``11`` header.
_SENTINEL_SHIFT = 2 + bv.ADDR_BITS * MAX_LISTED

#: Translation table mapping every byte value to its low six bits — the
#: portion Figure 9's comparators inspect.  ``data.translate(_LOW6_TABLE)``
#: is the software analogue of wiring the low-6 lines to the comparator
#: array: one C-speed pass over the line.
_LOW6_TABLE = bytes(value & bv.LOW6_MASK for value in range(256))


# ---------------------------------------------------------------------------
# Reference implementations (Algorithms 1 and 2, loop-per-byte).
#
# These are the retained ground truth for the differential tests; they are
# deliberately untouched by the fast-path work below.
# ---------------------------------------------------------------------------


def find_sentinel_reference(data: bytes, secmask: int) -> int:
    """Choose a sentinel by scanning every regular byte (line 7, Algorithm 1)."""
    if secmask == 0:
        raise SentinelNotFoundError(
            "a line with no security bytes may have no free 6-bit pattern; "
            "sentinels are only defined for califormed lines"
        )
    used = 0
    for index in range(LINE_SIZE):
        if not bv.test_bit(secmask, index):
            used |= 1 << bv.low6(data[index])
    for pattern in range(1 << bv.ADDR_BITS):
        if not (used >> pattern) & 1:
            return pattern
    raise SentinelNotFoundError(
        "no free 6-bit pattern among regular bytes; "
        "this is impossible for a califormed line"
    )  # pragma: no cover - unreachable by the counting argument


def _header_fields(secmask: int) -> tuple[int, list[int], int]:
    """Return ``(code, listed_addresses, header_len)`` for a mask."""
    indices = bv.indices_from_mask(secmask)
    count = len(indices)
    code = min(count, MAX_LISTED) - 1
    header_len = HEADER_BYTES_FOR_CODE[code]
    return code, indices[:MAX_LISTED], header_len


def _pack_header(code: int, listed: list[int], sentinel: int | None) -> bytes:
    """Pack the Figure 7 header into ``len(listed)`` little-endian bytes."""
    value = code
    for position, address in enumerate(listed):
        value |= address << (2 + bv.ADDR_BITS * position)
    if code == MAX_LISTED - 1:
        assert sentinel is not None
        value |= sentinel << _SENTINEL_SHIFT
    return value.to_bytes(HEADER_BYTES_FOR_CODE[code], "little")


def _unpack_header(raw: bytes) -> tuple[int, list[int], int | None, int]:
    """Inverse of :func:`_pack_header`; returns (code, listed, sentinel, len)."""
    code = raw[0] & 0b11
    header_len = HEADER_BYTES_FOR_CODE[code]
    value = int.from_bytes(raw[:header_len], "little")
    listed = [
        (value >> (2 + bv.ADDR_BITS * position)) & bv.LOW6_MASK
        for position in range(code + 1)
    ]
    sentinel = None
    if code == MAX_LISTED - 1:
        sentinel = (value >> _SENTINEL_SHIFT) & bv.LOW6_MASK
    return code, listed, sentinel, header_len


def _parking_assignment(
    listed: list[int], header_len: int, secmask: int
) -> list[tuple[int, int]]:
    """Pair each regular header byte with the security slot that parks it.

    Returns ``[(header_index, slot_index), ...]``.  Regular header bytes are
    taken in ascending order; parking slots are the listed security
    addresses at-or-after the header, also ascending.  The two lists always
    have equal length: every security byte inside the header region is
    necessarily among the listed (smallest) addresses.
    """
    regular_header = [
        index for index in range(header_len) if not bv.test_bit(secmask, index)
    ]
    parking_slots = [address for address in listed if address >= header_len]
    assert len(regular_header) == len(parking_slots), (
        "header displacement invariant broken: "
        f"{regular_header} vs {parking_slots}"
    )
    return list(zip(regular_header, parking_slots))


def encode_reference(line: BitvectorLine) -> SentinelLine:
    """Reference spill path (Algorithm 1 / Figure 8), loop-per-byte."""
    if line.secmask == 0:
        return SentinelLine(bytes(line.data), califormed=False)

    data = normalize_security_bytes(bytes(line.data), line.secmask)
    code, listed, header_len = _header_fields(line.secmask)
    indices = bv.indices_from_mask(line.secmask)

    sentinel = None
    if code == MAX_LISTED - 1:
        sentinel = find_sentinel_reference(data, line.secmask)

    out = bytearray(data)
    # Park the regular data displaced by the header inside security slots.
    for header_index, slot in _parking_assignment(listed, header_len, line.secmask):
        out[slot] = data[header_index]
    # Mark every security byte beyond the fourth with the sentinel.  Those
    # are all at index > listed[3] >= 3, i.e. outside the header.
    if sentinel is not None:
        for extra in indices[MAX_LISTED:]:
            out[extra] = sentinel
    out[:header_len] = _pack_header(code, listed, sentinel)
    return SentinelLine(bytes(out), califormed=True)


def decode_reference(line: SentinelLine) -> BitvectorLine:
    """Reference fill path (Algorithm 2 / Figure 9), loop-per-byte."""
    if not line.califormed:
        return BitvectorLine(bytearray(line.raw), 0)

    raw = line.raw
    code, listed, sentinel, header_len = _unpack_header(raw)
    secmask = bv.mask_from_indices(listed)
    if sentinel is not None:
        listed_set = set(listed)
        # Figure 9: only bytes 4..63 feed the sentinel comparators.
        for index in range(MAX_LISTED, LINE_SIZE):
            if index not in listed_set and bv.low6(raw[index]) == sentinel:
                secmask = bv.set_bit(secmask, index)

    out = bytearray(raw)
    for header_index, slot in _parking_assignment(listed, header_len, secmask):
        out[header_index] = raw[slot]
    # Any header byte that is itself a security byte carries no data.
    for index in range(header_len):
        if bv.test_bit(secmask, index):
            out[index] = 0
    return BitvectorLine(out, secmask)


# ---------------------------------------------------------------------------
# Fast paths: memoized codec plan + whole-line integer operations.
# ---------------------------------------------------------------------------


class _CodecPlan:
    """Everything the fill/spill modules need for one security mask.

    The hardware's conversion logic is fixed-function: for a given set of
    security-byte locations the header layout, crossbar routing and
    zeroing behaviour are pure combinational functions of the mask.  This
    class is the software analogue — computed once per distinct
    ``secmask`` and memoized, so repeated layouts (the common case: a few
    struct shapes dominate any workload) pay one dict lookup.
    """

    __slots__ = (
        "secmask",
        "count",
        "code",
        "header_len",
        "listed",
        "parking",
        "extras",
        "header_base",
        "needs_sentinel",
        "zeroing",
        "keep",
    )

    def __init__(self, secmask: int):
        indices = bv.indices_from_mask(secmask)
        self.secmask = secmask
        self.count = len(indices)
        self.code = min(self.count, MAX_LISTED) - 1
        self.header_len = HEADER_BYTES_FOR_CODE[self.code]
        self.listed = indices[:MAX_LISTED]
        self.parking = tuple(
            _parking_assignment(self.listed, self.header_len, secmask)
        )
        self.extras = tuple(indices[MAX_LISTED:])
        header_base = self.code
        for position, address in enumerate(self.listed):
            header_base |= address << (2 + bv.ADDR_BITS * position)
        self.header_base = header_base
        self.needs_sentinel = self.code == MAX_LISTED - 1
        self.zeroing = bv.expand_mask_to_bytes(secmask)
        self.keep = ~self.zeroing


@lru_cache(maxsize=4096)
def _plan_for_mask(secmask: int) -> _CodecPlan:
    return _CodecPlan(secmask)


def codec_plan_cache_info():
    """Expose the plan cache statistics (perf harness / debugging aid)."""
    return _plan_for_mask.cache_info()


def _find_sentinel_normalized(data: bytes, security_count: int) -> int:
    """Sentinel search for a line whose security bytes are already zero.

    One ``translate`` pass folds every byte to its low six bits, a set
    over the result collects the used patterns, and the only correction
    needed is for pattern 0: the ``security_count`` zeroed security bytes
    contribute it spuriously, so it stays available unless some *regular*
    byte also maps to 0.  The free pattern chosen is the smallest, matching
    :func:`find_sentinel_reference`.
    """
    low6 = data.translate(_LOW6_TABLE)
    # Pattern 0 is spuriously "used" by the zeroed security bytes; it is
    # genuinely free when no regular byte also maps to 0.
    if low6.count(0) == security_count:
        return 0
    used = set(low6)
    for pattern in range(1, 1 << bv.ADDR_BITS):
        if pattern not in used:
            return pattern
    raise SentinelNotFoundError(
        "no free 6-bit pattern among regular bytes; "
        "this is impossible for a califormed line"
    )  # pragma: no cover - unreachable by the counting argument


def find_sentinel(data: bytes, secmask: int) -> int:
    """Choose a sentinel: a 6-bit pattern unused by any regular byte.

    Implements line 7 of Algorithm 1 ("scan least 6-bit of every byte to
    determine sentinel").  Only *regular* bytes constrain the choice — the
    paper's existence argument ("at most 63 unique values that non-security
    bytes can have") relies on excluding the security bytes, whose stored
    values are meaningless.

    Raises :class:`SentinelNotFoundError` if ``secmask`` is zero, because a
    line of 64 regular bytes can exhaust all 64 patterns.
    """
    if secmask == 0:
        raise SentinelNotFoundError(
            "a line with no security bytes may have no free 6-bit pattern; "
            "sentinels are only defined for califormed lines"
        )
    if not security_bytes_clean(data, secmask):
        # Non-canonical security bytes would pollute the single-pass scan;
        # take the reference path that skips them index by index.
        return find_sentinel_reference(data, secmask)
    return _find_sentinel_normalized(bytes(data), secmask.bit_count())


def encode(line: BitvectorLine) -> SentinelLine:
    """Spill a line from L1 to L2 format (Algorithm 1 / Figure 8).

    Lines with no security bytes pass through unchanged with the metadata
    bit clear (lines 1–3 of the algorithm).  Califormed lines take the
    memoized-plan fast path; see the module docstring.
    """
    secmask = line.secmask
    if secmask == 0:
        return SentinelLine.trusted(bytes(line.data), False)

    plan = _plan_for_mask(secmask)
    value = int.from_bytes(line.data, "little")
    if value & plan.zeroing:
        out = bytearray((value & plan.keep).to_bytes(LINE_SIZE, "little"))
    else:
        out = bytearray(line.data)

    header = plan.header_base
    if plan.needs_sentinel:
        # Scan before the crossbar writes below disturb the security slots
        # the zero-count correction relies on.
        sentinel = _find_sentinel_normalized(out, plan.count)
        header |= sentinel << _SENTINEL_SHIFT
    # The crossbar: park the regular data displaced by the header inside
    # security slots, per the precomputed assignment.  Reads are from
    # header positions (< header_len), writes to listed slots beyond the
    # header and to the extras — disjoint ranges, so in-place is safe.
    for header_index, slot in plan.parking:
        out[slot] = out[header_index]
    if plan.needs_sentinel:
        for extra in plan.extras:
            out[extra] = sentinel
    out[: plan.header_len] = header.to_bytes(plan.header_len, "little")
    return SentinelLine.trusted(bytes(out), True)


def decode(line: SentinelLine) -> BitvectorLine:
    """Fill a line from L2 format into L1 format (Algorithm 2 / Figure 9).

    Un-califormed lines pass through with an all-zero bit vector (lines
    1–3).  For califormed lines the security mask is reconstructed from the
    header (and, for the ``11`` code, the 60-comparator sentinel scan over
    bytes 4..63), parked data is restored to its natural position, and every
    security slot is zeroed (line 10: "set the new locations of
    byte[Addr[0-3]] to zero").
    """
    if not line.califormed:
        return BitvectorLine.trusted(bytearray(line.raw), 0)

    raw = line.raw
    code = raw[0] & 0b11
    header_len = code + 1
    value = int.from_bytes(raw[:header_len], "little")
    listed = [
        (value >> (2 + bv.ADDR_BITS * position)) & bv.LOW6_MASK
        for position in range(header_len)
    ]
    secmask = 0
    for address in listed:
        secmask |= 1 << address

    if code == MAX_LISTED - 1:
        sentinel = (value >> _SENTINEL_SHIFT) & bv.LOW6_MASK
        # Figure 9: only bytes 4..63 feed the sentinel comparators.  The
        # translate pass is the comparator array; ``find`` hops between
        # matches at C speed.
        low6 = raw.translate(_LOW6_TABLE)
        listed_mask = secmask
        position = low6.find(sentinel, MAX_LISTED)
        while position != -1:
            if not (listed_mask >> position) & 1:
                secmask |= 1 << position
            position = low6.find(sentinel, position + 1)

    plan = _plan_for_mask(secmask)
    out = bytearray(raw)
    # Invert the crossbar: restore the parked header data.  Well-formed
    # lines always match the plan's precomputed assignment; a malformed
    # header (unsorted or duplicate addresses) gets the reference pairing.
    if listed == plan.listed and header_len == plan.header_len:
        parking = plan.parking
    else:
        parking = _parking_assignment(listed, header_len, secmask)
    for header_index, slot in parking:
        out[header_index] = raw[slot]
    # Zero every security slot in one whole-line mask operation (the
    # reference delegates this to the BitvectorLine constructor).
    line_value = int.from_bytes(out, "little")
    if line_value & plan.zeroing:
        out = bytearray((line_value & plan.keep).to_bytes(LINE_SIZE, "little"))
    return BitvectorLine.trusted(out, secmask)


def roundtrip(line: BitvectorLine) -> BitvectorLine:
    """Encode then decode a line; used by tests and sanity checks."""
    return decode(encode(line))
