"""Appendix A Califorms variants for the L1 cache.

The paper's main L1 design (:class:`~repro.core.line_formats.BitvectorLine`)
spends 8 B of metadata per 64 B line.  Appendix A describes two denser L1
alternatives that trade lookup latency for storage, both built from the same
trick as califorms-sentinel: hide the bit vector *inside* a security byte.

``califorms-4B`` (Figure 14)
    The line is split into eight 8-byte chunks.  A califormed chunk stores
    its 8-bit byte-granular bit vector inside one of its own security bytes;
    4 bits of metadata per chunk record (a) whether the chunk is califormed
    and (b) which of the eight bytes holds the vector.  Total extra storage:
    4 B per line (6.25 %).

``califorms-1B`` (Figure 15)
    As above, but the bit vector always lives in the chunk's byte 0 (the
    *header byte*).  If byte 0 is itself regular data, its original value is
    parked in the chunk's **last** security byte.  Only 1 bit of metadata
    per chunk remains ("chunk califormed?").  Total extra storage: 1 B per
    line (1.56 %).

Both variants are exact re-encodings of the logical line: the codecs below
round-trip against :class:`BitvectorLine` and are property-tested.  Their
latency/area consequences are modelled in :mod:`repro.analysis.vlsi`
(Table 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import bitvector as bv
from repro.core.line_formats import LINE_SIZE, BitvectorLine

#: Chunk geometry shared by both variants.
CHUNK_SIZE = 8
CHUNKS_PER_LINE = LINE_SIZE // CHUNK_SIZE


def _chunk_mask(secmask: int, chunk: int) -> int:
    """Extract the 8-bit security mask of one chunk."""
    return (secmask >> (chunk * CHUNK_SIZE)) & 0xFF


@dataclass(frozen=True)
class Califorms4BLine:
    """Physical representation of the califorms-4B format (Figure 14).

    ``raw``
        64 stored bytes (bit vectors embedded in security slots).
    ``chunk_califormed``
        8-bit mask: bit ``c`` set when chunk ``c`` contains security bytes.
    ``vector_slot``
        Per-chunk 3-bit index of the byte that stores the chunk's bit
        vector (meaningful only for califormed chunks).
    """

    raw: bytes
    chunk_califormed: int
    vector_slot: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.raw) != LINE_SIZE:
            raise ValueError("califorms-4B line must hold 64 bytes")
        if len(self.vector_slot) != CHUNKS_PER_LINE:
            raise ValueError("one vector slot per chunk required")

    @property
    def metadata_bits(self) -> int:
        """Extra storage consumed: 4 bits per chunk."""
        return 4 * CHUNKS_PER_LINE


def encode_4b(line: BitvectorLine) -> Califorms4BLine:
    """Encode a logical line into the califorms-4B format."""
    raw = bytearray(line.data)
    chunk_califormed = 0
    slots: list[int] = []
    for chunk in range(CHUNKS_PER_LINE):
        mask = _chunk_mask(line.secmask, chunk)
        if mask == 0:
            slots.append(0)
            continue
        chunk_califormed |= 1 << chunk
        slot = (mask & -mask).bit_length() - 1  # first security byte
        raw[chunk * CHUNK_SIZE + slot] = mask
        slots.append(slot)
    return Califorms4BLine(bytes(raw), chunk_califormed, tuple(slots))


def decode_4b(encoded: Califorms4BLine) -> BitvectorLine:
    """Decode a califorms-4B line back to the logical view."""
    data = bytearray(encoded.raw)
    secmask = 0
    for chunk in range(CHUNKS_PER_LINE):
        if not (encoded.chunk_califormed >> chunk) & 1:
            continue
        slot = encoded.vector_slot[chunk]
        mask = encoded.raw[chunk * CHUNK_SIZE + slot]
        secmask |= mask << (chunk * CHUNK_SIZE)
    return BitvectorLine(data, secmask)


@dataclass(frozen=True)
class Califorms1BLine:
    """Physical representation of the califorms-1B format (Figure 15).

    ``raw``
        64 stored bytes (chunk bit vectors in header bytes, displaced
        header data parked in last security slots).
    ``chunk_califormed``
        8-bit mask: bit ``c`` set when chunk ``c`` contains security bytes.
    """

    raw: bytes
    chunk_califormed: int

    def __post_init__(self) -> None:
        if len(self.raw) != LINE_SIZE:
            raise ValueError("califorms-1B line must hold 64 bytes")

    @property
    def metadata_bits(self) -> int:
        """Extra storage consumed: 1 bit per chunk."""
        return CHUNKS_PER_LINE


def encode_1b(line: BitvectorLine) -> Califorms1BLine:
    """Encode a logical line into the califorms-1B format.

    For each califormed chunk the 8-bit vector goes into the header (byte
    0 of the chunk).  If the header byte is regular data, its value is
    parked in the chunk's last security byte first.
    """
    raw = bytearray(line.data)
    chunk_califormed = 0
    for chunk in range(CHUNKS_PER_LINE):
        mask = _chunk_mask(line.secmask, chunk)
        if mask == 0:
            continue
        chunk_califormed |= 1 << chunk
        base = chunk * CHUNK_SIZE
        header_is_regular = not (mask & 1)
        if header_is_regular:
            last_security = mask.bit_length() - 1
            raw[base + last_security] = raw[base]
        raw[base] = mask
    return Califorms1BLine(bytes(raw), chunk_califormed)


def decode_1b(encoded: Califorms1BLine) -> BitvectorLine:
    """Decode a califorms-1B line back to the logical view."""
    data = bytearray(encoded.raw)
    secmask = 0
    for chunk in range(CHUNKS_PER_LINE):
        if not (encoded.chunk_califormed >> chunk) & 1:
            continue
        base = chunk * CHUNK_SIZE
        mask = encoded.raw[base]
        secmask |= mask << base
        if not (mask & 1):  # header byte was regular: un-park its value
            last_security = mask.bit_length() - 1
            data[base] = encoded.raw[base + last_security]
    return BitvectorLine(data, secmask)
