"""Califorms wrapped in the baseline-comparison interface.

The real system lives in :mod:`repro.memory`/:mod:`repro.softstack`; this
adapter exposes the same ``check_access`` contract as the Section 9
baselines so one attack suite can rank every scheme side by side.  It is
deliberately implemented on the same :class:`RegionSet` bookkeeping as
the other models — the detection *decision* (is any touched byte
blacklisted?) is what is compared, and the functional hierarchy tests
already prove the hardware enforces exactly that decision.
"""

from __future__ import annotations

from repro.baselines.base import (
    DetectionTime,
    RegionSet,
    SafetyModel,
    SchemeTraits,
    TrackedAllocation,
    Violation,
)


class CaliformsModel(SafetyModel):
    """Byte-granular blacklisting with intra-object spans + quarantine.

    Under the clean-before-use heap discipline (Section 6.1) every byte
    that is not live object data is a security byte: the intra-object
    spans, the freed/quarantined regions, and the arena between and
    around allocations.  ``check_access`` therefore flags any byte that
    is blacklisted *or simply not inside a live object's data*.
    """

    traits = SchemeTraits(
        name="Califorms",
        granularity="byte",
        intra_object="yes",
        binary_composability="yes",
        temporal_safety="yes (quarantine)",
        metadata_overhead="byte-granular security bytes (in dead space)",
        memory_overhead_scaling="~ blacklisted memory",
        performance_overhead_scaling="~ # of CFORM insns",
        main_operations="execute CFORM insns",
        core_changes="none",
        cache_changes="8b per L1D line, 1b per L2/L3 line",
        memory_changes="uses spare ECC bit",
        software_changes="compiler inserts spans; allocator (un)sets tags",
    )

    def __init__(self):
        super().__init__()
        self.blacklisted = RegionSet()
        self._live_regions: dict[int, tuple[int, int]] = {}

    def _protect(self, allocation: TrackedAllocation) -> None:
        self._live_regions[allocation.pointer_id] = (
            allocation.address,
            allocation.end,
        )
        for offset, size in allocation.intra_spans:
            self.blacklisted.add(allocation.address + offset, size)

    def _unprotect(self, allocation: TrackedAllocation) -> None:
        # Remove the intra-object spans, then blacklist the whole region
        # (clean-before-use + quarantine).
        self._live_regions.pop(allocation.pointer_id, None)
        for offset, size in allocation.intra_spans:
            self.blacklisted.remove(allocation.address + offset, size)
        self.blacklisted.add(allocation.address, allocation.size)

    def _inside_live_object(self, address: int, size: int) -> bool:
        remaining = set(range(address, address + size))
        for start, end in self._live_regions.values():
            remaining -= set(range(max(start, address), min(end, address + size)))
            if not remaining:
                return True
        return not remaining

    def check_access(self, allocation, address, size, is_write):
        if self.blacklisted.overlaps(address, size):
            return Violation(
                self.name, address, size, is_write, DetectionTime.IMMEDIATE,
                "access touched a security byte",
            )
        if not self._inside_live_object(address, size):
            return Violation(
                self.name, address, size, is_write, DetectionTime.IMMEDIATE,
                "access touched blacklisted arena bytes",
            )
        return None
