"""Whitelisting baselines: MPX-style bounds and ADI-style colouring.

* **Intel MPX / Hardbound** (disjoint metadata, Figure 13a): every
  pointer carries base/bound; each dereference is checked.  Intra-object
  protection requires *bounds narrowing*, which production compilers do
  not implement (Section 9) — the model exposes it as an option so the
  experiments can show both rows of Table 4.  Composability caveat:
  bounds are dropped when a pointer passes through unprotected code.
* **SPARC ADI** (cojoined metadata, Figure 13b): 4-bit colours per
  cache-line granule, matched against the pointer's colour.  13 usable
  colours mean reuse, and reuse means collisions — the model assigns
  colours round-robin exactly so the attack simulator can measure the
  collision escape rate Table 4 footnotes (¶"limited to 13 tags").
"""

from __future__ import annotations

import itertools

from repro.baselines.base import (
    DetectionTime,
    SafetyModel,
    SchemeTraits,
    TrackedAllocation,
    Violation,
)

GRANULE = 64


class MpxModel(SafetyModel):
    """Per-pointer bounds checking (Intel MPX / Hardbound family)."""

    traits = SchemeTraits(
        name="Intel MPX",
        granularity="byte",
        intra_object="with bounds narrowing (unsupported by compilers)",
        binary_composability="execution compatible; protection dropped",
        temporal_safety="no",
        metadata_overhead="2 words per pointer",
        memory_overhead_scaling="~ # of pointers",
        performance_overhead_scaling="~ # of pointer dereferences",
        main_operations="2+ mem refs for bounds; check & propagate insns",
        core_changes="bounds registers + check logic",
        cache_changes="bounds-table entries compete for cache",
        memory_changes="bounds tables in program memory",
        software_changes="compiler annotates and checks every pointer",
    )

    def __init__(self, bounds_narrowing: bool = False):
        super().__init__()
        self.bounds_narrowing = bounds_narrowing
        #: Pointers that passed through unprotected modules lose bounds.
        self.laundered: set[int] = set()

    def launder(self, allocation: TrackedAllocation) -> None:
        """Model a pointer passing through an unprotected library."""
        self.laundered.add(allocation.pointer_id)

    def narrowed_bounds(
        self, allocation: TrackedAllocation, address: int
    ) -> tuple[int, int]:
        """Bounds for the access: whole object, or the enclosing field
        when bounds narrowing is enabled."""
        if not self.bounds_narrowing or not allocation.intra_spans:
            return allocation.address, allocation.end
        # Narrow to the live region between surrounding dead spans.
        start, end = allocation.address, allocation.end
        for offset, size in allocation.intra_spans:
            span_start = allocation.address + offset
            span_end = span_start + size
            if span_end <= address:
                start = max(start, span_end)
            elif span_start > address:
                end = min(end, span_start)
        return start, end

    def check_access(self, allocation, address, size, is_write):
        if allocation is None:
            return None  # wild pointer: no bounds registered, no check
        if allocation.pointer_id in self.laundered:
            return None  # bounds were dropped at the module boundary
        if allocation.pointer_id not in self.live:
            return None  # stale pointer: MPX has no temporal safety
        base, limit = self.narrowed_bounds(allocation, address)
        if address < base or address + size > limit:
            return Violation(
                self.name, address, size, is_write, DetectionTime.IMMEDIATE,
                "bounds check failed",
            )
        return None


class AdiModel(SafetyModel):
    """SPARC ADI memory colouring at cache-line granularity."""

    traits = SchemeTraits(
        name="SPARC ADI",
        granularity="cache line",
        intra_object="no",
        binary_composability="yes",
        temporal_safety="yes (limited to 13 tags)",
        metadata_overhead="4b per cache line",
        memory_overhead_scaling="~ program memory footprint",
        performance_overhead_scaling="~ # of tag (un)set ops",
        main_operations="(un)set tag",
        core_changes="tag check on access (closed platform)",
        cache_changes="4b per line",
        memory_changes="colors in ECC bits",
        software_changes="allocator (un)sets memory tags, tags pointers",
    )

    USABLE_COLORS = 13

    def __init__(self):
        super().__init__()
        self._color_cycle = itertools.cycle(range(1, self.USABLE_COLORS + 1))
        self.granule_colors: dict[int, int] = {}

    def _protect(self, allocation: TrackedAllocation) -> None:
        allocation.color = next(self._color_cycle)
        for granule in self._granules(allocation.address, allocation.size):
            self.granule_colors[granule] = allocation.color

    def _unprotect(self, allocation: TrackedAllocation) -> None:
        # Recolouring on free gives (tag-limited) temporal safety.
        for granule in self._granules(allocation.address, allocation.size):
            self.granule_colors[granule] = 0

    def check_access(self, allocation, address, size, is_write):
        if allocation is None or allocation.color is None:
            return None
        for granule in self._granules(address, size):
            color = self.granule_colors.get(granule)
            if color is not None and color != allocation.color:
                return Violation(
                    self.name, address, size, is_write,
                    DetectionTime.IMMEDIATE,
                    f"color mismatch (ptr {allocation.color} vs mem {color})",
                )
        return None

    @staticmethod
    def _granules(address: int, size: int):
        return range(address // GRANULE, (address + size - 1) // GRANULE + 1)
