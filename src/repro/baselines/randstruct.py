"""randstruct-style layout randomization and the BROP counter-attack.

Section 7.3 compares Califorms' randomness to the Linux ``randstruct``
plugin, which shuffles structure layouts at compile time but "does not
offer detection of rogue accesses unlike Califorms", and notes that any
*static* randomization is prone to BROP-style brute forcing — repeatedly
crashing a restart-after-crash service until the guessed layout works —
unless the service re-randomizes on respawn.

Two pieces live here:

* :class:`RandstructModel` — a baseline for the scheme comparison:
  field order is shuffled (so blind overwrites of a *specific* field need
  a guess) but nothing is ever detected.
* :func:`simulate_brop` — the brute-force attack loop against a service
  with configurable respawn behaviour, measuring attempts-to-success.
  Against a fixed layout the expected attempts follow a geometric
  distribution over the layout space; with per-respawn re-randomization
  (the paper's proposed mitigation) success probability per attempt never
  improves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.baselines.base import (
    SafetyModel,
    SchemeTraits,
)
from repro.softstack.ctypes_model import Struct
from repro.softstack.insertion import full
from repro.softstack.layout import layout_struct


class RandstructModel(SafetyModel):
    """Compile-time field shuffling: probabilistic, detection-free."""

    traits = SchemeTraits(
        name="randstruct (Linux)",
        granularity="field order",
        intra_object="probabilistic only",
        binary_composability="no (layout baked per build)",
        temporal_safety="no",
        metadata_overhead="none",
        memory_overhead_scaling="none",
        performance_overhead_scaling="none",
        main_operations="none at runtime",
        core_changes="none",
        cache_changes="none",
        memory_changes="none",
        software_changes="compiler shuffles annotated struct layouts",
    )

    def check_access(self, allocation, address, size, is_write):
        return None  # never detects anything — that is the point


@dataclass(frozen=True)
class BropResult:
    """Outcome of one BROP simulation."""

    attempts: int
    succeeded: bool
    crashes: int


class _ConstantRng:
    """A stand-in RNG whose randint always returns one value."""

    def __init__(self, value: int):
        self._value = value

    def randint(self, low: int, high: int) -> int:
        return max(low, min(self._value, high))


def offset_bounds(
    struct: Struct, target_field: str, span_min: int, span_max: int
) -> tuple[int, int]:
    """Lowest/highest possible offset of a field under the full policy."""
    natural = layout_struct(struct)
    lowest = full(natural, _ConstantRng(span_min), span_min, span_max)
    highest = full(natural, _ConstantRng(span_max), span_min, span_max)
    return lowest.offset_of(target_field), highest.offset_of(target_field)


def simulate_brop(
    struct: Struct,
    target_field: str,
    rerandomize_on_respawn: bool,
    max_attempts: int = 5000,
    seed: int = 0,
    span_min: int = 1,
    span_max: int = 7,
) -> BropResult:
    """Brute-force a full-policy layout by crash-and-retry.

    Each attempt guesses the randomized *offset* of ``target_field`` and
    "writes" there.  A wrong guess touches a security byte or the wrong
    field → crash → respawn.  Against a fixed layout the attacker
    enumerates the (alignment-stepped) offset space and eventually wins;
    with re-randomization on respawn every attempt faces a fresh draw and
    accumulated knowledge is worthless — the paper's proposed mitigation.
    """
    rng = random.Random(seed)
    natural = layout_struct(struct)
    step = natural.slot(target_field).ctype.align
    low, high = offset_bounds(struct, target_field, span_min, span_max)
    candidates = list(range(low, high + 1, step)) or [low]

    def fresh_layout():
        return full(natural, rng, span_min, span_max)

    layout = fresh_layout()
    crashes = 0
    for attempt in range(1, max_attempts + 1):
        if rerandomize_on_respawn and crashes:
            layout = fresh_layout()
        if rerandomize_on_respawn:
            guess = candidates[rng.randrange(len(candidates))]
        else:
            guess = candidates[(attempt - 1) % len(candidates)]
        if guess == layout.offset_of(target_field):
            return BropResult(attempts=attempt, succeeded=True, crashes=crashes)
        crashes += 1
    return BropResult(attempts=max_attempts, succeeded=False, crashes=crashes)
