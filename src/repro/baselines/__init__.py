"""Section 9 baseline schemes and the Tables 4-6 comparison machinery.

* :mod:`repro.baselines.whitelisting` — MPX-style bounds, ADI colouring.
* :mod:`repro.baselines.tripwires` — REST, SafeMem, software canaries.
* :mod:`repro.baselines.califorms_model` — Califorms in the same harness.
* :mod:`repro.baselines.comparison` — Tables 4/5/6 row generation.
"""

from repro.baselines.base import (
    DetectionTime,
    RegionSet,
    SafetyModel,
    SchemeTraits,
    TrackedAllocation,
    Violation,
)
from repro.baselines.califorms_model import CaliformsModel
from repro.baselines.comparison import (
    TABLE4,
    TABLE5,
    TABLE6,
    all_traits,
    implemented_models,
    render_table,
    table_rows,
)
from repro.baselines.tripwires import CanaryModel, RestModel, SafeMemModel
from repro.baselines.whitelisting import AdiModel, MpxModel

__all__ = [
    "SafetyModel",
    "SchemeTraits",
    "TrackedAllocation",
    "Violation",
    "DetectionTime",
    "RegionSet",
    "MpxModel",
    "AdiModel",
    "RestModel",
    "SafeMemModel",
    "CanaryModel",
    "CaliformsModel",
    "implemented_models",
    "all_traits",
    "table_rows",
    "render_table",
    "TABLE4",
    "TABLE5",
    "TABLE6",
]
