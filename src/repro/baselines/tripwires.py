"""Inlined-metadata blacklisting baselines: REST, SafeMem and canaries.

These are Califorms' own family (Figure 13c).  The differences that
matter, and that the models reproduce:

* **REST** [27] blacklists 8-64 B token regions around objects and
  quarantines freed memory.  Detection is immediate, but granularity is
  the token size — intra-object spans are unaffordable.
* **SafeMem** [26] repurposes ECC to poison whole cache lines: 64 B
  granularity, no temporal story, and (as the paper notes) speculative
  fetches can bypass it — modelled as a configurable miss probability on
  reads.
* **Canaries** (StackGuard-style) are software tripwires: only
  *overwrites* are detectable, and only when the canary is checked later
  — a window the attack simulator measures.
"""

from __future__ import annotations

from repro.baselines.base import (
    DetectionTime,
    RegionSet,
    SafetyModel,
    SchemeTraits,
    TrackedAllocation,
    Violation,
)

LINE = 64


class RestModel(SafetyModel):
    """REST: token (8-64 B) tripwires + quarantined frees."""

    traits = SchemeTraits(
        name="REST",
        granularity="8-64B",
        intra_object="no",
        binary_composability="yes",
        temporal_safety="yes (quarantine)",
        metadata_overhead="8-64B token per blacklisted region",
        memory_overhead_scaling="~ blacklisted memory",
        performance_overhead_scaling="~ # of arm/disarm insns",
        main_operations="execute arm/disarm insns",
        core_changes="none",
        cache_changes="1-8b per L1D line, 1 comparator",
        memory_changes="none",
        software_changes="allocator (un)sets tags, randomizes placement",
    )

    def __init__(self, token_size: int = 64):
        super().__init__()
        if not 8 <= token_size <= 64:
            raise ValueError("REST tokens are 8-64 bytes")
        self.token_size = token_size
        self.blacklisted = RegionSet()

    def _protect(self, allocation: TrackedAllocation) -> None:
        self.blacklisted.add(allocation.address - self.token_size, self.token_size)
        self.blacklisted.add(allocation.end, self.token_size)

    def _unprotect(self, allocation: TrackedAllocation) -> None:
        # Freed region becomes one big token (quarantine).
        self.blacklisted.add(allocation.address, allocation.size)

    def check_access(self, allocation, address, size, is_write):
        if self.blacklisted.overlaps(address, size):
            return Violation(
                self.name, address, size, is_write, DetectionTime.IMMEDIATE,
                "access overlapped REST token",
            )
        return None


class SafeMemModel(SafetyModel):
    """SafeMem: ECC-scrambled cache lines as tripwires."""

    traits = SchemeTraits(
        name="SafeMem",
        granularity="cache line",
        intra_object="no",
        binary_composability="yes",
        temporal_safety="no",
        metadata_overhead="2x blacklisted memory",
        memory_overhead_scaling="~ blacklisted memory",
        performance_overhead_scaling="~ # of ECC (un)set ops",
        main_operations="syscall to scramble ECC, copy data",
        core_changes="none",
        cache_changes="none",
        memory_changes="repurposes ECC bits",
        software_changes="syscall interface for scrambling",
    )

    def __init__(self, speculative_bypass: bool = False):
        super().__init__()
        self.speculative_bypass = speculative_bypass
        self.poisoned_lines: set[int] = set()

    def _protect(self, allocation: TrackedAllocation) -> None:
        # Poison the guard lines adjacent to the object.
        self.poisoned_lines.add((allocation.address - 1) // LINE)
        self.poisoned_lines.add(allocation.end // LINE)

    def check_access(self, allocation, address, size, is_write):
        lines = range(address // LINE, (address + size - 1) // LINE + 1)
        if any(line in self.poisoned_lines for line in lines):
            if self.speculative_bypass and not is_write:
                return None  # the paper's speculative-fetch bypass
            return Violation(
                self.name, address, size, is_write, DetectionTime.IMMEDIATE,
                "access to ECC-scrambled line",
            )
        return None


class CanaryModel(SafetyModel):
    """StackGuard-style canaries: deferred, overwrite-only detection."""

    traits = SchemeTraits(
        name="Canaries (software)",
        granularity="word",
        intra_object="no",
        binary_composability="yes",
        temporal_safety="no",
        metadata_overhead="8B canary per frame/object",
        memory_overhead_scaling="~ # of protected objects",
        performance_overhead_scaling="~ # of canary checks",
        main_operations="store canary; compare at check points",
        core_changes="none",
        cache_changes="none",
        memory_changes="none",
        software_changes="compiler inserts canaries and checks",
    )

    CANARY_SIZE = 8

    def __init__(self):
        super().__init__()
        self.canaries: dict[int, bool] = {}  # start -> intact?

    def _protect(self, allocation: TrackedAllocation) -> None:
        self.canaries[allocation.end] = True

    def check_access(self, allocation, address, size, is_write):
        for start, intact in self.canaries.items():
            if address < start + self.CANARY_SIZE and start < address + size:
                if is_write and intact:
                    # Clobbered now; only *noticed* at the next check.
                    self.canaries[start] = False
                    return Violation(
                        self.name, address, size, is_write,
                        DetectionTime.DEFERRED,
                        "canary overwritten (detected at check time)",
                    )
                return None  # overreads are invisible to canaries
        return None

    def run_checks(self) -> list[int]:
        """The periodic canary verification; returns clobbered starts."""
        return [start for start, intact in self.canaries.items() if not intact]
