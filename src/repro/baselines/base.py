"""Common interface for the Section 9 baseline memory-safety schemes.

Each prior scheme (Hardbound/MPX-style whitelisting, ADI-style colouring,
REST/SafeMem-style tripwires, software canaries) is modelled functionally:
enough mechanism to decide *which accesses it detects*, so the security
experiments can run one attack suite across every scheme and reproduce
Table 4's comparison quantitatively, not just as a checklist.

The models manage their own flat address space bookkeeping — they are
comparison points, not part of the Califorms hierarchy.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field


class DetectionTime(enum.Enum):
    """When a scheme notices a violation."""

    IMMEDIATE = "immediate"  # hardware trap at the access
    DEFERRED = "deferred"  # discovered at a later check (canaries)
    NEVER = "never"


@dataclass(frozen=True)
class Violation:
    """One detected illegal access."""

    scheme: str
    address: int
    size: int
    is_write: bool
    when: DetectionTime
    reason: str


@dataclass(frozen=True)
class SchemeTraits:
    """The qualitative rows of Tables 4/5/6 for one scheme."""

    name: str
    # Table 4 — security.
    granularity: str
    intra_object: str  # "yes" / "no" / "with bounds narrowing" ...
    binary_composability: str
    temporal_safety: str
    # Table 5 — performance.
    metadata_overhead: str
    memory_overhead_scaling: str
    performance_overhead_scaling: str
    main_operations: str
    # Table 6 — implementation complexity.
    core_changes: str
    cache_changes: str
    memory_changes: str
    software_changes: str


@dataclass
class TrackedAllocation:
    """A live object as seen by a baseline model."""

    pointer_id: int
    address: int
    size: int
    #: Intra-object dead spans (offset, size) the program never uses —
    #: what Califorms blacklists; most baselines cannot represent them.
    intra_spans: tuple[tuple[int, int], ...] = ()
    color: int | None = None

    @property
    def end(self) -> int:
        return self.address + self.size


class SafetyModel(abc.ABC):
    """A functional detection model for one protection scheme."""

    #: Subclasses set this to their Tables 4-6 row.
    traits: SchemeTraits

    def __init__(self) -> None:
        self._next_pointer = 1
        self.live: dict[int, TrackedAllocation] = {}

    @property
    def name(self) -> str:
        return self.traits.name

    # -- lifecycle ---------------------------------------------------------

    def on_alloc(
        self,
        address: int,
        size: int,
        intra_spans: tuple[tuple[int, int], ...] = (),
    ) -> TrackedAllocation:
        """Register a new object; returns the tracked record ("pointer")."""
        allocation = TrackedAllocation(
            pointer_id=self._next_pointer,
            address=address,
            size=size,
            intra_spans=intra_spans,
        )
        self._next_pointer += 1
        self.live[allocation.pointer_id] = allocation
        self._protect(allocation)
        return allocation

    def on_free(self, allocation: TrackedAllocation) -> None:
        """Unregister an object (schemes may quarantine/recolour)."""
        self.live.pop(allocation.pointer_id, None)
        self._unprotect(allocation)

    # -- the access check ----------------------------------------------------

    @abc.abstractmethod
    def check_access(
        self,
        allocation: TrackedAllocation | None,
        address: int,
        size: int,
        is_write: bool,
    ) -> Violation | None:
        """Decide whether the scheme flags this access.

        ``allocation`` is the object the attacker's pointer is derived
        from (None for wild accesses) — pointer-based schemes use it,
        location-based schemes ignore it.
        """

    # -- hooks ------------------------------------------------------------------

    def _protect(self, allocation: TrackedAllocation) -> None:
        """Scheme-specific work at allocation time."""

    def _unprotect(self, allocation: TrackedAllocation) -> None:
        """Scheme-specific work at free time."""


@dataclass
class RegionSet:
    """Sorted set of blacklisted byte regions with overlap queries."""

    _regions: list[tuple[int, int]] = field(default_factory=list)

    def add(self, start: int, size: int) -> None:
        if size > 0:
            self._regions.append((start, start + size))

    def remove(self, start: int, size: int) -> None:
        self._regions = [
            region for region in self._regions if region != (start, start + size)
        ]

    def overlaps(self, start: int, size: int) -> bool:
        end = start + size
        return any(start < r_end and r_start < end for r_start, r_end in self._regions)

    def __len__(self) -> int:
        return len(self._regions)
