"""The Section 9 comparison matrices (Tables 4, 5 and 6).

Rows are generated from each implemented scheme's ``traits`` plus static
entries for the schemes the paper tabulates but whose mechanisms add
nothing to our attack-simulation comparison (Watchdog, PUMP, CHERI
variants, BOGO).  Printing helpers render the same row/column structure
the paper uses, so the benchmark drivers can regenerate the tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import SchemeTraits
from repro.baselines.califorms_model import CaliformsModel
from repro.baselines.tripwires import CanaryModel, RestModel, SafeMemModel
from repro.baselines.whitelisting import AdiModel, MpxModel

#: Static rows for paper-tabulated schemes we do not functionally model.
_LITERATURE_ROWS: list[SchemeTraits] = [
    SchemeTraits(
        name="Hardbound",
        granularity="byte",
        intra_object="with bounds narrowing",
        binary_composability="no",
        temporal_safety="no",
        metadata_overhead="0-2 words per ptr + 4b per word",
        memory_overhead_scaling="~ # of ptrs and program footprint",
        performance_overhead_scaling="~ # of ptr dereferences",
        main_operations="1-2 mem refs for bounds; check uops",
        core_changes="uop injection; extended reg file",
        cache_changes="tag cache + its TLB",
        memory_changes="shadow metadata space",
        software_changes="compiler & allocator annotate pointers",
    ),
    SchemeTraits(
        name="Watchdog",
        granularity="byte",
        intra_object="with bounds narrowing",
        binary_composability="no",
        temporal_safety="yes",
        metadata_overhead="4 words per ptr",
        memory_overhead_scaling="~ # of ptrs and allocations",
        performance_overhead_scaling="~ # of ptr dereferences",
        main_operations="1-3 mem refs for bounds; check uops",
        core_changes="uop injection; extended reg file",
        cache_changes="pointer-lock cache",
        memory_changes="shadow metadata space",
        software_changes="compiler & allocator annotate pointers",
    ),
    SchemeTraits(
        name="PUMP",
        granularity="word",
        intra_object="no",
        binary_composability="yes",
        temporal_safety="yes",
        metadata_overhead="64b per cache line",
        memory_overhead_scaling="~ program memory footprint",
        performance_overhead_scaling="~ # of ptr ops",
        main_operations="fetch & check rules; propagate tags",
        core_changes="tag-extended datapath; new miss handler",
        cache_changes="rule cache",
        memory_changes="tag storage",
        software_changes="compiler & allocator set tags",
    ),
    SchemeTraits(
        name="CHERI",
        granularity="byte",
        intra_object="no (forgoes bounds narrowing)",
        binary_composability="no",
        temporal_safety="no",
        metadata_overhead="256b per ptr",
        memory_overhead_scaling="~ # of ptrs and physical memory",
        performance_overhead_scaling="~ # of ptr ops",
        main_operations="capability loads; management insns",
        core_changes="capability reg file + coprocessor",
        cache_changes="capability caches",
        memory_changes="capability storage",
        software_changes="compiler & allocator annotate pointers",
    ),
]


def implemented_models() -> list:
    """Fresh instances of every functionally-modelled scheme."""
    return [
        MpxModel(),
        AdiModel(),
        SafeMemModel(),
        RestModel(),
        CanaryModel(),
        CaliformsModel(),
    ]


def all_traits() -> list[SchemeTraits]:
    """Every row of the comparison tables, Califorms last (as the paper)."""
    implemented = [type(model).traits for model in implemented_models()]
    califorms = [t for t in implemented if t.name == "Califorms"]
    others = [t for t in implemented if t.name != "Califorms"]
    return _LITERATURE_ROWS + others + califorms


@dataclass(frozen=True)
class TableSpec:
    """Column selection for one of the paper's comparison tables."""

    title: str
    columns: tuple[tuple[str, str], ...]  # (header, traits attribute)


TABLE4 = TableSpec(
    title="Table 4: security comparison",
    columns=(
        ("Proposal", "name"),
        ("Protection granularity", "granularity"),
        ("Intra-object", "intra_object"),
        ("Binary composability", "binary_composability"),
        ("Temporal safety", "temporal_safety"),
    ),
)

TABLE5 = TableSpec(
    title="Table 5: performance comparison",
    columns=(
        ("Proposal", "name"),
        ("Metadata overhead", "metadata_overhead"),
        ("Memory overhead", "memory_overhead_scaling"),
        ("Performance overhead", "performance_overhead_scaling"),
        ("Main operations", "main_operations"),
    ),
)

TABLE6 = TableSpec(
    title="Table 6: implementation complexity",
    columns=(
        ("Proposal", "name"),
        ("Core", "core_changes"),
        ("Caches/TLB", "cache_changes"),
        ("Memory", "memory_changes"),
        ("Software", "software_changes"),
    ),
)


def table_rows(spec: TableSpec) -> list[dict[str, str]]:
    """Rows for one table: list of {header: value} dicts."""
    return [
        {header: getattr(traits, attribute) for header, attribute in spec.columns}
        for traits in all_traits()
    ]


def render_table(spec: TableSpec) -> str:
    """Render a comparison table as aligned plain text."""
    rows = table_rows(spec)
    headers = [header for header, _ in spec.columns]
    widths = {
        header: max(len(header), *(len(row[header]) for row in rows))
        for header in headers
    }
    lines = [spec.title, ""]
    lines.append("  ".join(header.ljust(widths[header]) for header in headers))
    lines.append("  ".join("-" * widths[header] for header in headers))
    for row in rows:
        lines.append(
            "  ".join(row[header].ljust(widths[header]) for header in headers)
        )
    return "\n".join(lines)
