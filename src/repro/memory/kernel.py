"""Batched tag-hierarchy kernel: column arrays in, exact LRU stats out.

The per-record replay path walks one ``(kind, address, arg)`` tuple at a
time through :class:`~repro.memory.cache.TagOnlyCache` ladders — correct,
but the Python interpreter pays per record.  This module is the
column-at-a-time equivalent: the trace layer decodes whole epochs into
parallel numpy arrays (:class:`repro.traces.format.RecordColumns`) and
the kernel resolves set indices, tag matches, LRU victim selection and
miss accounting over those arrays in vectorized batches.

Exactness is the design constraint, not an aspiration: every statistic a
kernel produces is **bit-identical** to the per-record ladder's, because
the per-record path stays in the tree as the differential-test oracle
(``tests/traces/test_columnar_equivalence.py``) and because
``replay_timing`` verifies replayed counts against recorded footers.
The vectorization therefore only removes work that provably cannot
change LRU state:

* address → ``(set, tag)`` resolution is pure arithmetic → vectorized;
* an access to the **same line as the previous access to the same set**
  is a guaranteed hit on that set's MRU way: the line is resident (the
  previous access either hit it or allocated it) and re-promoting the
  MRU entry is a no-op, so collapsing these accesses to a vectorized
  count changes neither contents nor order (consecutive global repeats
  — scans, CFORM line walks, pre-warm sweeps — are a subset);
* cache **sets are independent**: an access only reads and writes its
  own set's state, so accesses to *different* sets may be processed in
  any order without changing any per-access hit/miss outcome.  The
  kernel sorts each batch by set (stably, so a set's own accesses stay
  in stream order) and then simulates **one access per set per round**
  as whole-matrix operations over a ``(num_sets, associativity)`` pair
  of line/timestamp arrays — exact LRU, because a per-round timestamp
  is strictly increasing along every set's stream and the victim is the
  minimum-stamp way.  Skewed tails (a few hot sets with long streams
  left) finish in a tight per-set Python loop over the same state.

numpy is a declared dependency (``pyproject.toml``), but every consumer
gates on :func:`require_numpy` so a numpy-less interpreter still has the
pure-Python per-record engine (``engine="records"``).
"""

from __future__ import annotations

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None

from repro.memory.cache import CacheGeometry
from repro.memory.hierarchy import HierarchyConfig

#: True when numpy imported and the columnar engine is available.
HAVE_NUMPY = _np is not None

#: The trace event kinds, as the kernel's own vocabulary.  These mirror
#: the ``EV_*`` constants of :mod:`repro.workloads.generator` (re-exported
#: by :mod:`repro.traces.format`); the memory layer cannot import the
#: workload engine without an import cycle, and the codes are frozen by
#: the trace container magic anyway.  A unit test pins the two sets to
#: each other so they cannot drift.
KIND_LOAD = 0
KIND_STORE = 1
KIND_ALLOC = 2
KIND_FREE = 3
KIND_CFORM = 4
KIND_WARM = 5
KIND_EPOCH = 6

#: Byte stride of one CFORM line touch during replay (the trace format
#: defines CFORM expansion as ``address + i * 64`` regardless of the
#: simulated geometry's line size).
CFORM_LINE_STRIDE = 64


def require_numpy(feature: str = "the columnar replay engine"):
    """Return numpy, or raise a directed ImportError.

    Every columnar entry point funnels through here so a numpy-less
    environment gets one clear message instead of an AttributeError deep
    inside a kernel.
    """
    if _np is None:
        raise ImportError(
            f"numpy is required for {feature} (declared in pyproject.toml; "
            "`pip install numpy`). Without it, use the pure-Python "
            "per-record path: engine='records' in the replay APIs, or "
            "--engine records on the python -m repro.traces CLI."
        )
    return _np


#: Below this many concurrently active sets, a vectorized round costs
#: more in numpy dispatch than the per-set Python tail loop it replaces.
_ROUND_MIN_SETS = 12

#: Sentinel stored in the line slot of an empty way.  No address can
#: floor-divide (line size ≥ 2) to the int64 minimum, so a plain
#: equality match can never hit an empty way and liveness checks drop
#: out of the hot matching loops entirely.
_EMPTY_LINE = -(2**63) if _np is None else int(_np.iinfo(_np.int64).min)


class LruTagKernel:
    """Batched twin of :class:`~repro.memory.cache.TagOnlyCache`.

    Same geometry, same counters, same LRU decisions — but accessed a
    column of addresses at a time.  State is a pair of
    ``(num_sets, associativity)`` arrays: the resident line per way
    (:data:`_EMPTY_LINE` marks an empty way, unmatched by any real
    address) and a strictly increasing last-use timestamp per way
    (``-1`` for empty ways, so they fill before any resident line is
    evicted).  A victim is the minimum-stamp way — exactly the least
    recently used — so hit/miss outcomes and retained contents are
    identical to the ``OrderedDict``-per-set mechanics of
    :class:`TagOnlyCache`.
    """

    __slots__ = (
        "geometry", "accesses", "hits", "misses",
        "rounds", "tail_accesses",
        "_line_size", "_num_sets", "_associativity",
        "_way_lines", "_way_stamps", "_clock",
    )

    def __init__(self, geometry: CacheGeometry):
        np = require_numpy("the batched LRU tag kernel")
        self.geometry = geometry
        self._line_size = geometry.line_size
        self._num_sets = geometry.num_sets
        self._associativity = geometry.associativity
        self._way_lines = np.full(
            (geometry.num_sets, geometry.associativity),
            _EMPTY_LINE,
            dtype=np.int64,
        )
        self._way_stamps = np.full(
            (geometry.num_sets, geometry.associativity), -1, dtype=np.int64
        )
        self._clock = 0
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        #: Instrumentation: cumulative vectorized (rank, kind) round
        #: groups executed, and accesses that fell to the per-set Python
        #: tail — their ratio is the batch algorithm's "tail fraction",
        #: the telemetry layer's vectorization-health signal.  Two int
        #: adds per batch; kept unconditional.
        self.rounds = 0
        self.tail_accesses = 0

    def access_block(self, addresses):
        """Touch every address in order; return the miss mask.

        ``addresses`` is an int64 array; the returned boolean array marks
        the accesses that missed this level (the residual stream a lower
        level must see, in order).  Counters update exactly as ``len(
        addresses)`` sequential :meth:`TagOnlyCache.access` calls would.

        The batch algorithm, each step exactness-preserving:

        1. collapse MRU repeats (global, then per set after the stable
           set sort) — guaranteed hits with no state effect;
        2. classify every **first batch occurrence of a line that is not
           resident at batch entry** as a *guaranteed miss*: nothing but
           an access to that line can insert it, so whatever happened
           earlier in the batch, the line is absent when reached;
        3. cut each set's stream into segments — maximal guaranteed-miss
           runs and single *unknown* accesses — and process segment
           round ``r`` of every set as one vectorized step.  A
           guaranteed-miss run of ``k`` distinct lines has a closed-form
           LRU update: its last ``min(k, assoc)`` lines replace the
           ``min(k, assoc)`` least-recently-stamped ways; an unknown
           access is resolved against the live state.  Stamps are the
           batch stream position, strictly increasing along every set's
           stream, so victim selection stays exact LRU.

        Skewed leftovers (a few sets with many more segments than the
        rest) finish in a per-set Python loop over the same state.
        """
        np = _np
        n = len(addresses)
        self.accesses += n
        miss_mask = np.zeros(n, dtype=bool)
        if n == 0:
            return miss_mask
        lines = addresses // self._line_size
        # Global MRU collapse: a repeat of the immediately preceding
        # line is a guaranteed hit that leaves the LRU state untouched.
        work = np.empty(n, dtype=bool)
        work[0] = True
        np.not_equal(lines[1:], lines[:-1], out=work[1:])
        work_idx = np.flatnonzero(work)
        work_lines = lines[work_idx]
        set_column = work_lines % self._num_sets
        # Stable sort by set: each set's accesses stay in stream order,
        # different sets are independent, so processing grouped-by-set
        # cannot change any outcome.
        order = np.argsort(set_column, kind="stable")
        grouped_sets = set_column[order]
        grouped_lines = work_lines[order]
        grouped_positions = work_idx[order]
        # Per-set MRU collapse: a repeat of the previous access *to the
        # same set* is likewise a guaranteed hit on that set's MRU way.
        m = len(grouped_sets)
        keep = np.empty(m, dtype=bool)
        keep[0] = True
        keep[1:] = (grouped_sets[1:] != grouped_sets[:-1]) | (
            grouped_lines[1:] != grouped_lines[:-1]
        )
        if not keep.all():
            grouped_sets = grouped_sets[keep]
            grouped_lines = grouped_lines[keep]
            grouped_positions = grouped_positions[keep]
            m = len(grouped_sets)
        set_boundary = np.empty(m, dtype=bool)
        set_boundary[0] = True
        np.not_equal(grouped_sets[1:], grouped_sets[:-1], out=set_boundary[1:])

        way_lines = self._way_lines
        way_stamps = self._way_stamps
        associativity = self._associativity

        # First batch occurrence of each line (same line ⇒ same set, so
        # a stable sort by line keeps every line's accesses in order).
        by_line = np.argsort(grouped_lines, kind="stable")
        lines_by_line = grouped_lines[by_line]
        new_line = np.empty(m, dtype=bool)
        new_line[0] = True
        np.not_equal(lines_by_line[1:], lines_by_line[:-1], out=new_line[1:])
        first_occurrence = np.empty(m, dtype=bool)
        first_occurrence[by_line] = new_line
        # Guaranteed miss: first occurrence of a line absent at entry.
        # A line value pins its set (line mod sets), so a sorted global
        # list of resident lines answers per-set residency in one
        # searchsorted — and a fully cold cache skips the probe.
        live = way_stamps >= 0
        if live.any():
            resident_lines = np.sort(way_lines[live])
            first_idx = np.flatnonzero(first_occurrence)
            first_lines = grouped_lines[first_idx]
            slot = np.minimum(
                np.searchsorted(resident_lines, first_lines),
                resident_lines.size - 1,
            )
            resident = resident_lines[slot] == first_lines
            guaranteed = np.zeros(m, dtype=bool)
            guaranteed[first_idx[~resident]] = True
        else:
            guaranteed = first_occurrence.copy()
        miss_mask[grouped_positions[guaranteed]] = True
        miss_count = int(guaranteed.sum())

        # Segments: maximal guaranteed-miss runs; unknowns stand alone.
        # Unknown accesses record their *hits* here as they resolve; a
        # single vectorized pass at the end books the complement as
        # misses.
        unknown = ~guaranteed
        unknown_hit = np.zeros(m, dtype=bool)
        seg_start = set_boundary | unknown
        seg_start[1:] |= unknown[:-1]
        seg_starts = np.flatnonzero(seg_start)
        seg_count = seg_starts.size
        seg_ends = np.append(seg_starts[1:], m)
        seg_sets = grouped_sets[seg_starts]
        seg_unknown = unknown[seg_starts]
        first_seg = np.flatnonzero(set_boundary[seg_starts])
        per_set_segments = np.diff(np.append(first_seg, seg_count))
        seg_rank = np.arange(seg_count) - np.repeat(
            first_seg, per_set_segments
        )
        # Ranks are consecutive per set, so the per-rank population is
        # non-increasing: vectorize the well-populated rounds, leave the
        # skewed tail ranks to the Python loop below.
        rank_counts = np.bincount(seg_rank)
        thin = rank_counts < _ROUND_MIN_SETS
        cutoff = int(np.argmax(thin)) if thin.any() else len(rank_counts)

        clock = self._clock
        in_rounds = seg_rank < cutoff
        round_segments = np.flatnonzero(in_rounds)
        if round_segments.size:
            # Group by (rank, kind): each group holds distinct sets, so
            # one fancy-indexed update per group is conflict-free.
            key = seg_rank[round_segments] * 2 + seg_unknown[round_segments]
            key_order = np.argsort(key, kind="stable")
            round_order = round_segments[key_order]
            key_sorted = key[key_order]
            bounds = np.flatnonzero(key_sorted[1:] != key_sorted[:-1]) + 1
            group_starts = np.append(0, bounds).tolist()
            group_ends = np.append(bounds, key_sorted.size).tolist()
            self.rounds += len(group_starts)
            way_columns = np.arange(associativity)
            flat_lines = way_lines.reshape(-1)
            flat_stamps = way_stamps.reshape(-1)
            for group_start, group_end in zip(group_starts, group_ends):
                segments = round_order[group_start:group_end]
                set_ids = seg_sets[segments]
                starts = seg_starts[segments]
                if key_sorted[group_start] & 1:  # unknown singletons
                    line = grouped_lines[starts]
                    match = way_lines[set_ids] == line[:, None]
                    hit = match.any(axis=1)
                    way = np.where(
                        hit,
                        match.argmax(axis=1),
                        way_stamps[set_ids].argmin(axis=1),
                    )
                    way_lines[set_ids, way] = line
                    way_stamps[set_ids, way] = clock + starts
                    unknown_hit[starts[hit]] = True
                else:  # guaranteed-miss runs: closed-form LRU update
                    ends = seg_ends[segments]
                    fill = np.minimum(ends - starts, associativity)
                    oldest_first = np.argsort(way_stamps[set_ids], axis=1)
                    chosen = way_columns < fill[:, None]
                    source = ends[:, None] - fill[:, None] + way_columns
                    new_lines = grouped_lines[np.where(chosen, source, 0)]
                    flat = (set_ids[:, None] * associativity + oldest_first)[
                        chosen
                    ]
                    flat_lines[flat] = new_lines[chosen]
                    flat_stamps[flat] = clock + source[chosen]
        if cutoff < len(rank_counts):
            # Tail: per set, every access from its first thin-rank
            # segment to the end of its stream, simulated sequentially.
            tail_segments = np.flatnonzero(~in_rounds)
            tail_sets = seg_sets[tail_segments]
            head = np.empty(tail_segments.size, dtype=bool)
            head[0] = True
            np.not_equal(tail_sets[1:], tail_sets[:-1], out=head[1:])
            heads = np.flatnonzero(head)
            first_of_set = tail_segments[heads]
            last_of_set = tail_segments[
                np.append(heads[1:] - 1, tail_segments.size - 1)
            ]
            for first_segment, last_segment in zip(
                first_of_set.tolist(), last_of_set.tolist()
            ):
                set_id = int(seg_sets[first_segment])
                start = int(seg_starts[first_segment])
                self.tail_accesses += int(seg_ends[last_segment]) - start
                row = way_lines[set_id].tolist()
                stamps = way_stamps[set_id].tolist()
                for offset, line in enumerate(
                    grouped_lines[start : int(seg_ends[last_segment])].tolist()
                ):
                    if line in row:  # hits are unknowns by construction
                        way = row.index(line)
                        unknown_hit[start + offset] = True
                    else:
                        way = stamps.index(min(stamps))
                        row[way] = line
                    stamps[way] = clock + start + offset
                way_lines[set_id] = row
                way_stamps[set_id] = stamps
        unknown_miss = unknown & ~unknown_hit
        miss_count += int(unknown_miss.sum())
        miss_mask[grouped_positions[unknown_miss]] = True
        self._clock = clock + m
        self.misses += miss_count
        self.hits += n - miss_count
        return miss_mask

    def reset_counters(self) -> None:
        """Zero the counters, keep the tag contents warm (end of warmup)."""
        self.accesses = 0
        self.hits = 0
        self.misses = 0


class LadderKernel:
    """A stack of :class:`LruTagKernel` levels filtering a touch stream.

    ``levels=3`` is the single-core L1→L2→L3 ladder (timing replay);
    ``levels=2`` is a multi-core private L1+L2 ladder whose residual —
    the shared-L3 request stream — the caller collects via the returned
    indices.
    """

    __slots__ = ("config", "l1", "l2", "l3")

    def __init__(self, config: HierarchyConfig, levels: int = 3):
        if levels not in (2, 3):
            raise ValueError("LadderKernel supports 2 or 3 levels")
        self.config = config
        self.l1 = LruTagKernel(config.l1_geometry)
        self.l2 = LruTagKernel(config.l2_geometry)
        self.l3 = LruTagKernel(config.l3_geometry) if levels == 3 else None

    def touch_block(self, addresses):
        """Run one touch column through the ladder, top to bottom.

        Returns the indices (into ``addresses``) of the touches that
        missed every level of this ladder, in stream order — empty for a
        3-level ladder's caller to ignore, the shared-L3 request stream
        for a 2-level one.
        """
        np = _np
        indices = np.flatnonzero(self.l1.access_block(addresses))
        for level in (self.l2, self.l3):
            if level is None:
                break
            if indices.size == 0:
                return indices
            indices = indices[np.flatnonzero(level.access_block(addresses[indices]))]
        return indices

    def reset_counters(self) -> None:
        self.l1.reset_counters()
        self.l2.reset_counters()
        if self.l3 is not None:
            self.l3.reset_counters()

    @property
    def levels(self) -> tuple:
        """The live kernel levels as ``(name, kernel)`` pairs."""
        pairs = [("l1", self.l1), ("l2", self.l2)]
        if self.l3 is not None:
            pairs.append(("l3", self.l3))
        return tuple(pairs)

    def instrumentation(self) -> dict:
        """Per-level batch-algorithm health: rounds and tail fraction.

        ``tail_accesses`` / ``accesses`` is the share of the touch
        stream that fell out of the vectorized rounds into the per-set
        Python tail (``accesses`` here counts from the last counter
        reset, so a warmed replay reports the measured region — the
        fraction is a health signal, not an accounting quantity).
        """
        report = {}
        for name, level in self.levels:
            accesses = level.accesses
            report[name] = {
                "rounds": level.rounds,
                "tail_accesses": level.tail_accesses,
                "tail_fraction": (
                    level.tail_accesses / accesses if accesses else 0.0
                ),
            }
        return report


def expand_touches(kinds, addresses, args):
    """Expand one record column into its cache-touch column.

    LOAD/STORE records contribute one touch at their address; CFORM
    records contribute ``arg`` touches at ``address + i * 64`` (the
    format's replay expansion); ALLOC/FREE/WARM/EPOCH contribute none.
    Returns ``(touch_addresses, counts)`` where ``counts`` holds each
    record's touch count — ``np.repeat(per_record_value, counts)``
    carries any per-record annotation (e.g. a multi-core slot) onto the
    touch column.
    """
    np = _np
    counts = np.zeros(len(kinds), dtype=np.int64)
    counts[(kinds == KIND_LOAD) | (kinds == KIND_STORE)] = 1
    cform = kinds == KIND_CFORM
    if cform.any():
        counts[cform] = args[cform]
    total = int(counts.sum())
    base = np.repeat(addresses, counts)
    if total and cform.any():
        # Intra-record index: 0 for single touches, 0..arg-1 inside a
        # CFORM line walk, stepping the touch address by 64 per line.
        starts = np.cumsum(counts) - counts
        intra = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        touch_addresses = base + intra * CFORM_LINE_STRIDE
    else:
        touch_addresses = base
    return touch_addresses, counts
