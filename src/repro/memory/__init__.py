"""Memory-system substrate: caches, DRAM, the full hierarchy and swap.

* :mod:`repro.memory.cache` — generic set-associative machinery plus the
  fast tag-only variant used by timing experiments.
* :mod:`repro.memory.l1cache` — the L1-D with bitvector metadata, access
  checks and CFORM execution (Figure 6).
* :mod:`repro.memory.dram` — main memory with the ECC spare-bit metadata.
* :mod:`repro.memory.hierarchy` — the Table 3 Westmere-like stack.
* :mod:`repro.memory.multicore` — N private L1/L2 tag ladders sharing
  one L3, for multi-programmed replay studies.
* :mod:`repro.memory.swap` — OS page swap that preserves metadata.
"""

from repro.memory.cache import (
    CacheGeometry,
    CacheLevel,
    CacheStats,
    TagOnlyCache,
    make_sentinel_cache,
)
from repro.memory.dram import Dram, line_address
from repro.memory.hierarchy import WESTMERE, HierarchyConfig, MemoryHierarchy
from repro.memory.l1cache import L1DataCache
from repro.memory.multicore import MultiCoreHierarchy, PrivateLadder, SharedL3
from repro.memory.swap import (
    LINES_PER_PAGE,
    METADATA_BYTES_PER_PAGE,
    PAGE_SIZE,
    SwapManager,
)

__all__ = [
    "CacheGeometry",
    "CacheLevel",
    "CacheStats",
    "TagOnlyCache",
    "make_sentinel_cache",
    "Dram",
    "line_address",
    "L1DataCache",
    "MemoryHierarchy",
    "HierarchyConfig",
    "MultiCoreHierarchy",
    "PrivateLadder",
    "SharedL3",
    "WESTMERE",
    "SwapManager",
    "PAGE_SIZE",
    "LINES_PER_PAGE",
    "METADATA_BYTES_PER_PAGE",
]
