"""Operating-system page-swap support for Califorms metadata.

Storage devices have no spare ECC bits, so "when a page with califormed
data is swapped out from main memory, the page fault handler needs to store
the metadata for the entire page into a reserved address space managed by
the operating system; the metadata is reclaimed upon swap in"
(Section 6.3).  For a 4 KB page that metadata is 64 lines x 1 bit = 8 B.

:class:`SwapManager` models exactly that: swap-out strips each line's
califormed bit into a reserved per-page record and moves the raw 64-byte
payloads to the swap device; swap-in reunites them.  The sentinel *format*
of the data is untouched in both directions — only the one bit per line
needs a home.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bitvector import LINE_SIZE
from repro.core.line_formats import SentinelLine
from repro.memory.dram import Dram

#: Standard small-page size assumed by the paper's arithmetic.
PAGE_SIZE = 4096

#: Lines per page; also the number of metadata bits per page record.
LINES_PER_PAGE = PAGE_SIZE // LINE_SIZE

#: Metadata bytes per swapped page ("the metadata for a 4KB page consumes
#: only 8B", Section 6.3).
METADATA_BYTES_PER_PAGE = LINES_PER_PAGE // 8


def page_base(address: int) -> int:
    """Round an address down to its page base."""
    return address & ~(PAGE_SIZE - 1)


@dataclass
class SwapStats:
    pages_out: int = 0
    pages_in: int = 0


@dataclass
class SwapManager:
    """Kernel-side page swapper that preserves Califorms metadata."""

    dram: Dram
    _swap_device: dict[int, list[bytes]] = field(default_factory=dict)
    _metadata_store: dict[int, int] = field(default_factory=dict)
    stats: SwapStats = field(default_factory=SwapStats)

    def swap_out(self, address: int) -> None:
        """Evict the page containing ``address`` to the swap device.

        The califormed bits are gathered into the reserved metadata store
        (one 64-bit record per page); the device receives raw bytes only.
        """
        base = page_base(address)
        if base in self._swap_device:
            raise ValueError(f"page 0x{base:x} is already swapped out")
        payloads: list[bytes] = []
        bits = 0
        for index in range(LINES_PER_PAGE):
            line_addr = base + index * LINE_SIZE
            line = self.dram.drop_line(line_addr) or SentinelLine.natural()
            payloads.append(line.raw)
            if line.califormed:
                bits |= 1 << index
        self._swap_device[base] = payloads
        self._metadata_store[base] = bits
        self.stats.pages_out += 1

    def swap_in(self, address: int) -> None:
        """Bring a page back from the swap device, reattaching metadata."""
        base = page_base(address)
        payloads = self._swap_device.pop(base, None)
        if payloads is None:
            raise KeyError(f"page 0x{base:x} is not swapped out")
        bits = self._metadata_store.pop(base)
        for index, raw in enumerate(payloads):
            califormed = bool((bits >> index) & 1)
            self.dram.write_line(
                base + index * LINE_SIZE, SentinelLine(raw, califormed)
            )
        self.stats.pages_in += 1

    def is_swapped(self, address: int) -> bool:
        return page_base(address) in self._swap_device

    def metadata_bytes_in_use(self) -> int:
        """Reserved-address-space footprint of the metadata store."""
        return len(self._metadata_store) * METADATA_BYTES_PER_PAGE
