"""DMA / heterogeneous-access model (Section 7.2's architectural gap).

Califorms' protection lives in the CPU's memory hierarchy; "its
protection is lost whenever one of its layers is bypassed (e.g.,
heterogeneous architectures or DMA is used)".  This model makes that gap
— and its mitigation — concrete:

* a naive DMA engine reads lines straight from DRAM and hands over the
  *raw sentinel-format bytes*: blacklisted accesses are not detected and
  the header/parked-byte encoding leaks layout information;
* a califorms-aware engine ("if the algorithm used for califorming is
  used by accelerators then attacks through heterogeneous components can
  also be averted") decodes lines, returns zeroed security bytes and
  reports violations like the core would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import bitvector as bv
from repro.core.exceptions import (
    AccessKind,
    ExceptionRecord,
)
from repro.core.sentinel import decode
from repro.memory.dram import Dram, line_address


@dataclass
class DmaTransfer:
    """Result of one DMA read."""

    data: bytes
    violations: list[ExceptionRecord] = field(default_factory=list)
    leaked_format_bytes: int = 0  # raw sentinel-encoded bytes exposed


@dataclass
class DmaEngine:
    """A device-side reader that bypasses the CPU caches entirely."""

    dram: Dram
    respects_califorms: bool = False

    def read(self, address: int, size: int) -> DmaTransfer:
        """Read ``size`` bytes at ``address`` directly from DRAM.

        The caller is responsible for having flushed the caches (real
        DMA engines snoop or rely on driver flushes; the experiments use
        ``MemoryHierarchy.flush_all``).
        """
        out = bytearray()
        violations: list[ExceptionRecord] = []
        leaked = 0
        cursor = address
        remaining = size
        while remaining > 0:
            base = line_address(cursor)
            offset = cursor - base
            take = min(remaining, 64 - offset)
            line = self.dram.read_line(base)
            if not self.respects_califorms:
                # Raw device view: sentinel-format bytes leak as-is and
                # nothing is checked.
                out += line.raw[offset : offset + take]
                if line.califormed:
                    leaked += take
            else:
                decoded = decode(line)
                touched = bv.range_mask(offset, take) & decoded.secmask
                if touched:
                    violations.append(
                        ExceptionRecord(
                            kind=AccessKind.LOAD,
                            address=cursor,
                            byte_indices=tuple(bv.iter_set_bits(touched)),
                            detail="DMA read touched security bytes",
                        )
                    )
                out += bytes(decoded.data[offset : offset + take])
            cursor += take
            remaining -= take
        return DmaTransfer(
            data=bytes(out), violations=violations, leaked_format_bytes=leaked
        )
