"""Main-memory model with ECC spare-bit metadata.

Califorms keeps lines califormed all the way to DRAM: "when a califormed
cache line is evicted from the last-level cache to main memory, we keep the
cache line califormed and store the additional one metadata bit into spare
ECC bits" (Section 3).  This model therefore stores
:class:`~repro.core.line_formats.SentinelLine` objects directly — the
``califormed`` flag *is* the spare ECC bit, and the model accounts for how
many such bits are in use so the experiments can report metadata footprint.

Unmapped addresses read as natural zero lines, like freshly zeroed physical
memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bitvector import LINE_SIZE
from repro.core.line_formats import SentinelLine


def line_address(address: int) -> int:
    """Round ``address`` down to its cache-line base."""
    return address & ~(LINE_SIZE - 1)


@dataclass
class DramStats:
    """Access counters for the DRAM model."""

    reads: int = 0
    writes: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0


@dataclass
class Dram:
    """A sparse 64-byte-line main memory.

    Implements the ``LineStore`` protocol used by every cache level:
    ``read_line`` / ``write_line`` in the L2+ sentinel format.
    """

    size_bytes: int = 8 << 30  # Table 3: 8 GB DDR3-1333
    _lines: dict[int, SentinelLine] = field(default_factory=dict)
    stats: DramStats = field(default_factory=DramStats)

    def read_line(self, address: int) -> SentinelLine:
        """Fetch the line containing ``address`` (line-aligned internally)."""
        base = line_address(address)
        self._check_bounds(base)
        self.stats.reads += 1
        line = self._lines.get(base)
        if line is None:
            return SentinelLine.natural()
        return line

    def write_line(self, address: int, line: SentinelLine) -> None:
        """Store a full line at the (aligned) address."""
        base = line_address(address)
        self._check_bounds(base)
        self.stats.writes += 1
        self._lines[base] = line

    # -- inspection used by the OS swap model and the experiments ---------

    def resident_lines(self) -> list[int]:
        """Addresses of lines that have ever been written, ascending."""
        return sorted(self._lines)

    def califormed_line_count(self) -> int:
        """How many resident lines currently use their ECC spare bit."""
        return sum(1 for line in self._lines.values() if line.califormed)

    def ecc_spare_bits_used(self) -> int:
        """Metadata storage in use, in bits (one per califormed line)."""
        return self.califormed_line_count()

    def drop_line(self, address: int) -> SentinelLine | None:
        """Remove and return a line (used by the swap model)."""
        return self._lines.pop(line_address(address), None)

    def _check_bounds(self, base: int) -> None:
        if not 0 <= base < self.size_bytes:
            raise ValueError(
                f"address 0x{base:x} outside {self.size_bytes}-byte DRAM"
            )
