"""Multi-core tag hierarchy: private L1/L2 ladders, one shared L3.

The paper evaluates Califorms on a multi-level hierarchy with per-core
private L1/L2 caches in front of a shared 2 MB L3 (Table 3).  This
module provides the timing-side model of that arrangement for
multi-programmed studies: ``N`` :class:`PrivateLadder` instances (one
per core, each an L1+L2 tag-only pair) filter their core's access
stream, and the residue — the per-core L2 miss stream — contends for
one :class:`SharedL3` tag array with per-core hit/miss attribution.

Everything is built from the same :class:`TagOnlyCache` /
:class:`CacheGeometry` pieces as the single-core ladder and priced with
the shared :func:`repro.memory.hierarchy.amat_cycles` helper, so the
cycle model cannot drift between single-core and multi-core replay: a
1-core :class:`MultiCoreHierarchy` *is* the single ladder, merely split
at the L2/L3 boundary.

The split at that boundary is deliberate: a core's L1/L2 behaviour
depends only on its own stream, so the private ladders can be simulated
independently (in parallel, by the trace replayer), while the shared L3
consumes the deterministically interleaved miss streams serially —
the design that keeps multi-core replay statistics identical at any
worker count.
"""

from __future__ import annotations

from repro.cpu.pipeline import MemoryEventCounts
from repro.memory.cache import TagOnlyCache
from repro.memory.hierarchy import WESTMERE, HierarchyConfig, amat_cycles


class PrivateLadder:
    """One core's private L1+L2 tag pair.

    :meth:`access` returns ``True`` when the touch is satisfied
    privately; ``False`` means the access missed both levels and must be
    presented to the shared L3.
    """

    __slots__ = ("l1", "l2")

    def __init__(self, config: HierarchyConfig):
        self.l1 = TagOnlyCache(config.l1_geometry)
        self.l2 = TagOnlyCache(config.l2_geometry)

    def access(self, address: int) -> bool:
        """Touch the ladder; ``True`` iff the L1 or L2 hit."""
        if self.l1.access(address):
            return True
        return self.l2.access(address)

    def reset_counters(self) -> None:
        """Discard statistics, keep tag contents warm (end of warmup)."""
        self.l1.reset_counters()
        self.l2.reset_counters()


class SharedL3:
    """One L3 tag array shared by ``cores`` requesters.

    The underlying :class:`TagOnlyCache` holds the global contents (so
    cores evict each other's lines — the contention effect under
    study); per-core ``accesses``/``misses`` lists attribute every
    request to the core that issued it, which is what the per-core
    slowdown accounting needs.
    """

    __slots__ = ("cache", "accesses", "misses")

    def __init__(self, config: HierarchyConfig, cores: int):
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.cache = TagOnlyCache(config.l3_geometry)
        self.accesses = [0] * cores
        self.misses = [0] * cores

    def access(self, core: int, address: int) -> bool:
        """Present one L2 miss from ``core``; ``True`` on L3 hit."""
        self.accesses[core] += 1
        if self.cache.access(address):
            return True
        self.misses[core] += 1
        return False

    def reset_core(self, core: int) -> None:
        """Zero one core's attribution (its warmup boundary passed).

        The tag contents — including lines the core already pulled in —
        stay warm, exactly like :meth:`TagOnlyCache.reset_counters`.
        """
        self.accesses[core] = 0
        self.misses[core] = 0


class SharedL3Kernel:
    """Columnar twin of :class:`SharedL3`: merged miss columns in batches.

    Same global tag contents and per-core attribution, but the requests
    arrive as parallel ``(core, address)`` columns already merged into
    the recorded interleaving — the
    :class:`~repro.memory.kernel.LruTagKernel` resolves the whole batch
    and the boolean miss mask is attributed per core with one bincount.
    Statistics are bit-identical to presenting the same stream through
    :meth:`SharedL3.access` one request at a time.
    """

    __slots__ = ("cache", "accesses", "misses")

    def __init__(self, config: HierarchyConfig, cores: int):
        from repro.memory.kernel import LruTagKernel, require_numpy

        require_numpy("the columnar multi-core replay engine")
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.cache = LruTagKernel(config.l3_geometry)
        self.accesses = [0] * cores
        self.misses = [0] * cores

    def replay_columns(self, core_column, address_column) -> None:
        """Present one merged batch of L2 misses; attribute per core.

        ``core_column`` holds each request's issuing core,
        ``address_column`` its (stride-disambiguated) address; both are
        equal-length int64 arrays in merged stream order.
        """
        from repro.memory.kernel import require_numpy

        np = require_numpy("the columnar multi-core replay engine")
        miss_mask = self.cache.access_block(address_column)
        cores = len(self.accesses)
        presented = np.bincount(core_column, minlength=cores)
        missed = np.bincount(core_column[miss_mask], minlength=cores)
        for core in range(cores):
            self.accesses[core] += int(presented[core])
            self.misses[core] += int(missed[core])

    def reset_core(self, core: int) -> None:
        """Zero one core's attribution; tag contents stay warm."""
        self.accesses[core] = 0
        self.misses[core] = 0


class MultiCoreHierarchy:
    """``cores`` private L1/L2 ladders in front of one shared L3.

    The live (per-access) interface for direct use and tests; the trace
    replayer drives the same :class:`PrivateLadder`/:class:`SharedL3`
    pieces through its two-phase pipeline instead, so both paths share
    one implementation of the tag mechanics and the cycle model.
    """

    def __init__(self, config: HierarchyConfig | None = None, cores: int = 2):
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.config = config or WESTMERE
        self.cores = cores
        self.ladders = [PrivateLadder(self.config) for _ in range(cores)]
        self.shared_l3 = SharedL3(self.config, cores)

    def access(self, core: int, address: int) -> None:
        """One cache touch by ``core`` at ``address``."""
        if not self.ladders[core].access(address):
            self.shared_l3.access(core, address)

    def reset_core_counters(self, core: int) -> None:
        """End-of-warmup for one core: statistics out, contents warm."""
        self.ladders[core].reset_counters()
        self.shared_l3.reset_core(core)

    # -- accounting ----------------------------------------------------------

    def core_events(self, core: int) -> MemoryEventCounts:
        """One core's event counts, L3 misses attributed to it."""
        ladder = self.ladders[core]
        return MemoryEventCounts(
            l1_accesses=ladder.l1.accesses,
            l1_misses=ladder.l1.misses,
            l2_misses=ladder.l2.misses,
            l3_misses=self.shared_l3.misses[core],
        )

    def merged_events(self) -> MemoryEventCounts:
        """Whole-chip event counts (sum over cores)."""
        per_core = [self.core_events(core) for core in range(self.cores)]
        return MemoryEventCounts(
            l1_accesses=sum(e.l1_accesses for e in per_core),
            l1_misses=sum(e.l1_misses for e in per_core),
            l2_misses=sum(e.l2_misses for e in per_core),
            l3_misses=sum(e.l3_misses for e in per_core),
        )

    def core_cycles(self, core: int) -> int:
        """AMAT-style cycle total for one core's attributed events."""
        events = self.core_events(core)
        return amat_cycles(
            self.config,
            events.l1_accesses,
            events.l1_misses,
            events.l2_misses,
            events.l3_misses,
        )

    def total_cycles(self) -> int:
        """Sum of per-core cycles (the AMAT model is linear)."""
        return sum(self.core_cycles(core) for core in range(self.cores))
