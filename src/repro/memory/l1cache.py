"""The L1 data cache: bitvector metadata, access checks, CFORM execution.

This is where all of Figure 6 lives.  Lines are held in the
*califorms-bitvector* format (one metadata bit per byte) so hits need no
address re-calculation; conversion to and from the sentinel format happens
on fill and spill at this level's boundary (Figure 1), implemented by the
codec in :mod:`repro.core.sentinel`.

Loads that touch security bytes return the pre-determined value zero and
carry a precise exception record; stores that touch security bytes are
reported *before* they commit (Section 5.1).  ``CFORM`` behaves like a
store: it write-allocates the line, then edits the metadata under the
Table 1 K-map.
"""

from __future__ import annotations

from repro.core import bitvector as bv
from repro.core.cform import CformRequest, apply_cform
from repro.core.exceptions import ExceptionRecord
from repro.core.line_formats import BitvectorLine, SentinelLine
from repro.core.sentinel import decode, encode
from repro.memory.cache import CacheGeometry, CacheLevel, LineStore


class L1DataCache(CacheLevel[BitvectorLine]):
    """L1-D holding lines in califorms-bitvector format."""

    def __init__(self, geometry: CacheGeometry, backing: LineStore, name: str = "L1D"):
        super().__init__(
            name,
            geometry,
            backing,
            fill=decode,
            spill=self._spill_line,
            converts=True,
        )

    @staticmethod
    def _spill_line(line: BitvectorLine) -> SentinelLine:
        return encode(line)

    # -- architectural accesses (single line each) --------------------------

    def load(self, address: int, size: int) -> tuple[bytes, ExceptionRecord | None]:
        """Load ``size`` bytes; the range must stay within one line."""
        base = address & ~(bv.LINE_SIZE - 1)
        offset = address - base
        if offset + size > bv.LINE_SIZE:
            raise ValueError(
                f"access [{address:#x}, +{size}) crosses a line boundary; "
                "the hierarchy splits accesses before they reach L1"
            )
        line = self._access_entry(base, False).payload
        return line.load(offset, size, base_address=base)

    def store(self, address: int, data: bytes) -> ExceptionRecord | None:
        """Store ``data``; the range must stay within one line.

        The line is dirtied only when the store commits — a store squashed
        by a security-byte violation modifies nothing.
        """
        base = address & ~(bv.LINE_SIZE - 1)
        offset = address - base
        if offset + len(data) > bv.LINE_SIZE:
            raise ValueError(
                f"access [{address:#x}, +{len(data)}) crosses a line boundary; "
                "the hierarchy splits accesses before they reach L1"
            )
        entry = self._access_entry(base, False)
        record = entry.payload.store(offset, data, base_address=base)
        if record is None:
            entry.dirty = True
        return record

    def cform(self, request: CformRequest) -> None:
        """Execute a ``CFORM`` against this cache (write-allocate, then edit).

        Raises :class:`~repro.core.exceptions.CformUsageError` on K-map
        violations; the line is untouched in that case.
        """
        entry = self._access_entry(request.line_address, False)
        apply_cform(entry.payload, request)
        entry.dirty = True

    def peek_secmask(self, address: int) -> int | None:
        """Security mask of a resident line, or None if not cached.

        Debug/experiment helper; does not perturb LRU or statistics.
        """
        set_index, tag = self.geometry.locate(address)
        entry = self._sets[set_index].get(tag)
        return entry.payload.secmask if entry is not None else None

