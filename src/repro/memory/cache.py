"""Generic set-associative, write-back, write-allocate cache.

Two flavours live here:

:class:`CacheLevel`
    The functional cache used by the full-system simulator.  Payloads are
    opaque to the mechanics; per-level *fill* and *spill* converters let the
    L1 hold :class:`BitvectorLine` while everything below holds
    :class:`SentinelLine` — the format conversion of Figure 1 happens
    exactly at the boundary where the paper puts it.

:class:`TagOnlyCache`
    A stripped-down tag array for the timing experiments, which only need
    hit/miss counts over address traces (Section 8's slowdown results are
    AMAT effects).  Same geometry and LRU policy, no data movement, much
    faster in pure Python.

Replacement is LRU; the policies in the evaluated Westmere-like system are
not disclosed by the paper, and LRU is the standard modelling choice.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Generic, Protocol, TypeVar

from repro.core.bitvector import LINE_SIZE
from repro.core.exceptions import ConfigurationError
from repro.core.line_formats import SentinelLine

PayloadT = TypeVar("PayloadT")


class LineStore(Protocol):
    """Anything that can serve and accept sentinel-format lines."""

    def read_line(self, address: int) -> SentinelLine: ...

    def write_line(self, address: int, line: SentinelLine) -> None: ...


@dataclass
class CacheGeometry:
    """Size/associativity description of one cache level."""

    size_bytes: int
    associativity: int
    line_size: int = LINE_SIZE

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise ConfigurationError("cache size and associativity must be positive")
        lines = self.size_bytes // self.line_size
        if lines * self.line_size != self.size_bytes:
            raise ConfigurationError("cache size must be a multiple of the line size")
        if lines % self.associativity != 0:
            raise ConfigurationError(
                f"{lines} lines cannot be split into {self.associativity}-way sets"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_size * self.associativity)

    def locate(self, address: int) -> tuple[int, int]:
        """Map a byte address to ``(set_index, tag)``."""
        line_number = address // self.line_size
        return line_number % self.num_sets, line_number // self.num_sets


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/traffic counters for one level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    fills_converted: int = 0
    spills_converted: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.fills_converted = 0
        self.spills_converted = 0


@dataclass(slots=True)
class _Entry(Generic[PayloadT]):
    payload: PayloadT
    dirty: bool = False


class CacheLevel(Generic[PayloadT]):
    """One write-back, write-allocate, LRU set-associative cache level.

    ``fill`` converts a lower-level :class:`SentinelLine` into this level's
    payload on a miss; ``spill`` converts back on dirty eviction.  The
    identity converters make a plain L2/L3; the sentinel codec makes the L1
    (see :class:`repro.memory.l1cache.L1DataCache`).
    """

    def __init__(
        self,
        name: str,
        geometry: CacheGeometry,
        backing: LineStore,
        fill: Callable[[SentinelLine], PayloadT],
        spill: Callable[[PayloadT], SentinelLine],
        converts: bool = False,
    ):
        self.name = name
        self.geometry = geometry
        self.backing = backing
        self._fill = fill
        self._spill = spill
        self._converts = converts
        self.stats = CacheStats()
        # Hoisted geometry constants: the hit path runs once per simulated
        # access, so even a method call per lookup is measurable.
        self._line_size = geometry.line_size
        self._num_sets = geometry.num_sets
        self._sets: list[OrderedDict[int, _Entry[PayloadT]]] = [
            OrderedDict() for _ in range(geometry.num_sets)
        ]

    # -- core mechanics ----------------------------------------------------

    def _access_entry(self, address: int, for_write: bool) -> _Entry[PayloadT]:
        """Hit-path core: return the (LRU-touched) entry for ``address``.

        Misses allocate (write-allocate policy) by fetching from the
        backing store; LRU victims that are dirty spill back down.
        Callers that need to flip ``dirty`` after inspecting the payload
        (the L1 store path) use the returned entry directly instead of a
        second tag lookup.
        """
        line_number = address // self._line_size
        set_index = line_number % self._num_sets
        tag = line_number // self._num_sets
        entries = self._sets[set_index]
        stats = self.stats
        stats.accesses += 1
        entry = entries.get(tag)
        if entry is not None:
            stats.hits += 1
            entries.move_to_end(tag)
        else:
            stats.misses += 1
            entry = self._allocate(address, set_index, tag)
        if for_write:
            entry.dirty = True
        return entry

    def access_line(self, address: int, *, for_write: bool) -> PayloadT:
        """Return the payload for the line containing ``address``."""
        return self._access_entry(address, for_write).payload

    def _allocate(self, address: int, set_index: int, tag: int) -> _Entry[PayloadT]:
        entries = self._sets[set_index]
        if len(entries) >= self.geometry.associativity:
            victim_tag, victim = entries.popitem(last=False)
            self._evict(set_index, victim_tag, victim)
        lower = self.backing.read_line(address)
        payload = self._fill(lower)
        if self._converts and lower.califormed:
            self.stats.fills_converted += 1
        entry = _Entry(payload)
        entries[tag] = entry
        return entry

    def _evict(self, set_index: int, tag: int, entry: _Entry[PayloadT]) -> None:
        self.stats.evictions += 1
        if entry.dirty:
            address = self._address_of(set_index, tag)
            lower = self._spill(entry.payload)
            if self._converts and lower.califormed:
                self.stats.spills_converted += 1
            self.backing.write_line(address, lower)
            self.stats.writebacks += 1

    def _address_of(self, set_index: int, tag: int) -> int:
        line_number = tag * self.geometry.num_sets + set_index
        return line_number * self.geometry.line_size

    # -- LineStore protocol (so levels stack) -------------------------------

    def read_line(self, address: int) -> SentinelLine:
        """Serve a line upward, in sentinel format."""
        payload = self.access_line(address, for_write=False)
        return self._spill(payload)

    def write_line(self, address: int, line: SentinelLine) -> None:
        """Accept a spilled line from the level above (write-allocate)."""
        set_index, tag = self.geometry.locate(address)
        self.access_line(address, for_write=True)
        self._sets[set_index][tag] = _Entry(self._fill(line), dirty=True)

    # -- maintenance ---------------------------------------------------------

    def contains(self, address: int) -> bool:
        set_index, tag = self.geometry.locate(address)
        return tag in self._sets[set_index]

    def flush(self) -> None:
        """Write back every dirty line and empty the cache."""
        for set_index, entries in enumerate(self._sets):
            for tag, entry in list(entries.items()):
                self._evict(set_index, tag, entry)
            entries.clear()

    def resident_line_count(self) -> int:
        return sum(len(entries) for entries in self._sets)


def identity_fill(line: SentinelLine) -> SentinelLine:
    return line


def identity_spill(line: SentinelLine) -> SentinelLine:
    return line


def make_sentinel_cache(
    name: str, geometry: CacheGeometry, backing: LineStore
) -> CacheLevel[SentinelLine]:
    """Build an L2/L3-style level that stores sentinel-format lines as-is."""
    return CacheLevel(name, geometry, backing, identity_fill, identity_spill)


class TagOnlyCache:
    """Tag array with LRU for fast miss counting over address traces."""

    __slots__ = (
        "geometry", "_sets", "accesses", "hits", "misses",
        "_line_size", "_num_sets", "_associativity",
    )

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self._line_size = geometry.line_size
        self._num_sets = geometry.num_sets
        self._associativity = geometry.associativity
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(geometry.num_sets)
        ]
        self.accesses = 0
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch the line containing ``address``; return True on hit."""
        line_number = address // self._line_size
        num_sets = self._num_sets
        set_index = line_number % num_sets
        tag = line_number // num_sets
        entries = self._sets[set_index]
        self.accesses += 1
        if tag in entries:
            self.hits += 1
            entries.move_to_end(tag)
            return True
        self.misses += 1
        if len(entries) >= self._associativity:
            entries.popitem(last=False)
        entries[tag] = None
        return False

    def reset_counters(self) -> None:
        """Zero the hit/miss counters, keeping the cache contents warm.

        Used by the trace runner to discard warmup-phase statistics, the
        moral equivalent of the paper's SimPoint region selection.
        """
        self.accesses = 0
        self.hits = 0
        self.misses = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0
