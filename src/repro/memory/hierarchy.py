"""The full memory hierarchy: L1-D → L2 → L3 → DRAM.

Wires the levels together with the paper's evaluated geometry (Table 3):

===========  ======================================
L1-D         32 KB, 8-way, 4-cycle latency
L2           256 KB, 8-way, 7-cycle latency
L3           2 MB, 16-way, 27-cycle latency
DRAM         8 GB DDR3-1333 (modelled as a flat latency)
===========  ======================================

The L1 holds califorms-bitvector lines; L2/L3/DRAM hold sentinel lines, so
a califormed line is converted exactly once per L1 fill or dirty spill —
the property that keeps the common case fast.

Cycle accounting is AMAT-style: every L1 access pays the L1 latency, each
miss at level *k* adds level *k+1*'s latency.  The ``l2_extra_cycles`` /
``l3_extra_cycles`` knobs reproduce the pessimistic +1-cycle experiment of
Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core import bitvector as bv
from repro.core.cform import CformRequest
from repro.core.exceptions import ExceptionRecord, SecurityByteAccess
from repro.memory.cache import CacheGeometry, CacheLevel, make_sentinel_cache
from repro.memory.dram import Dram
from repro.memory.l1cache import L1DataCache


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry and latency of the simulated memory system (Table 3)."""

    l1_geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(32 * 1024, 8)
    )
    l2_geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(256 * 1024, 8)
    )
    l3_geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(2 * 1024 * 1024, 16)
    )
    l1_latency: int = 4
    l2_latency: int = 7
    l3_latency: int = 27
    dram_latency: int = 120  # ~53 ns DDR3-1333 at the 2.27 GHz core clock
    l2_extra_cycles: int = 0  # Figure 10's pessimistic +1 knob
    l3_extra_cycles: int = 0

    def with_extra_latency(self, cycles: int = 1) -> "HierarchyConfig":
        """The Figure 10 configuration: +``cycles`` on both L2 and L3."""
        return replace(self, l2_extra_cycles=cycles, l3_extra_cycles=cycles)


#: The paper's simulated system (Table 3), for convenience.
WESTMERE = HierarchyConfig()


def amat_cycles(
    config: HierarchyConfig,
    l1_accesses: int,
    l1_misses: int,
    l2_misses: int,
    l3_misses: int,
) -> int:
    """AMAT-style cycle total for a set of cache-event counts.

    The single source of truth for the cycle model: every L1 access pays
    the L1 latency, each miss at level *k* adds level *k+1*'s latency
    (extra-latency knobs included).  Used by
    :meth:`MemoryHierarchy.total_cycles` and by the trace replayer, so
    the two cannot drift apart.
    """
    return (
        l1_accesses * config.l1_latency
        + l1_misses * (config.l2_latency + config.l2_extra_cycles)
        + l2_misses * (config.l3_latency + config.l3_extra_cycles)
        + l3_misses * config.dram_latency
    )


class MemoryHierarchy:
    """Functional L1/L2/L3/DRAM stack with Califorms semantics.

    This is the data-carrying simulator used by the runtime and the
    security experiments.  The timing experiments use the lighter
    :class:`repro.analysis.timing_model` machinery instead.
    """

    def __init__(self, config: HierarchyConfig | None = None):
        self.config = config or WESTMERE
        self.dram = Dram()
        self.l3 = make_sentinel_cache("L3", self.config.l3_geometry, self.dram)
        self.l2 = make_sentinel_cache("L2", self.config.l2_geometry, self.l3)
        self.l1 = L1DataCache(self.config.l1_geometry, self.l2)

    # -- architectural operations -------------------------------------------

    def load(self, address: int, size: int) -> tuple[bytes, list[ExceptionRecord]]:
        """Read ``size`` bytes, splitting across lines as needed.

        Returns the data (zeros in blacklisted positions) and any precise
        exception records the access produced.  Raising is the caller's
        policy decision — the CPU model raises unless the OS whitelist
        suppresses.
        """
        # Common case: the whole access sits inside one line — skip the
        # split bookkeeping and the chunk join.  Zero-size (and negative)
        # requests keep the split path so they never touch the L1.
        if 0 < size and (address & (bv.LINE_SIZE - 1)) + size <= bv.LINE_SIZE:
            value, record = self.l1.load(address, size)
            return value, [] if record is None else [record]
        chunks: list[bytes] = []
        records: list[ExceptionRecord] = []
        for piece_addr, piece_size in _split_by_line(address, size):
            value, record = self.l1.load(piece_addr, piece_size)
            chunks.append(value)
            if record is not None:
                records.append(record)
        return b"".join(chunks), records

    def store(self, address: int, data: bytes) -> list[ExceptionRecord]:
        """Write ``data``, splitting across lines as needed."""
        if 0 < len(data) <= bv.LINE_SIZE - (address & (bv.LINE_SIZE - 1)):
            record = self.l1.store(address, data)
            return [] if record is None else [record]
        records: list[ExceptionRecord] = []
        offset = 0
        for piece_addr, piece_size in _split_by_line(address, len(data)):
            record = self.l1.store(piece_addr, data[offset : offset + piece_size])
            offset += piece_size
            if record is not None:
                records.append(record)
        return records

    # -- batched access API --------------------------------------------------

    def load_many(
        self, requests: list[tuple[int, int]]
    ) -> list[tuple[bytes, list[ExceptionRecord]]]:
        """Perform many loads; one ``(value, records)`` pair per request.

        Semantically identical to calling :meth:`load` per request, with
        the attribute lookups hoisted out of the loop — the fast path for
        trace replay and bulk experiment drivers.
        """
        l1_load = self.l1.load
        line_size = bv.LINE_SIZE
        offset_mask = line_size - 1
        results: list[tuple[bytes, list[ExceptionRecord]]] = []
        append = results.append
        for address, size in requests:
            if 0 < size and (address & offset_mask) + size <= line_size:
                value, record = l1_load(address, size)
                append((value, [] if record is None else [record]))
            else:
                append(self.load(address, size))
        return results

    def store_many(
        self, requests: list[tuple[int, bytes]]
    ) -> list[list[ExceptionRecord]]:
        """Perform many stores; one record list per request."""
        l1_store = self.l1.store
        line_size = bv.LINE_SIZE
        offset_mask = line_size - 1
        results: list[list[ExceptionRecord]] = []
        append = results.append
        for address, data in requests:
            if 0 < len(data) <= line_size - (address & offset_mask):
                record = l1_store(address, data)
                append([] if record is None else [record])
            else:
                append(self.store(address, data))
        return results

    def replay_trace(self, ops: list[tuple]) -> int:
        """Replay a mixed trace of ``("L", addr, size)`` / ``("S", addr, data)``.

        Returns the number of security-byte violations observed.  This is
        the bulk driver for trace-based experiments: per-op results are
        not materialised, attribute lookups are hoisted, and single-line
        accesses (the overwhelming majority in real traces) go straight to
        the L1 entry point.

        Edge cases are defined behaviour: an empty (or single-op) trace
        replays normally — ``[]`` returns 0 without touching any level —
        and a malformed op (unknown kind, or too few fields) raises
        :class:`ValueError` identifying the offending position, leaving
        any earlier ops' effects applied.
        """
        if not ops:
            return 0
        l1_load = self.l1.load
        l1_store = self.l1.store
        line_size = bv.LINE_SIZE
        offset_mask = line_size - 1
        violations = 0
        for index, op in enumerate(ops):
            try:
                kind = op[0]
                address = op[1]
            except (IndexError, TypeError):
                raise ValueError(
                    f"malformed trace op at index {index}: {op!r} "
                    "(need (kind, address, size-or-data))"
                ) from None
            if kind == "L":
                try:
                    size = op[2]
                except IndexError:
                    raise ValueError(
                        f"malformed trace op at index {index}: {op!r} "
                        "(load needs a size)"
                    ) from None
                if 0 < size and (address & offset_mask) + size <= line_size:
                    if l1_load(address, size)[1] is not None:
                        violations += 1
                else:
                    violations += len(self.load(address, size)[1])
            elif kind == "S":
                try:
                    data = op[2]
                except IndexError:
                    raise ValueError(
                        f"malformed trace op at index {index}: {op!r} "
                        "(store needs data)"
                    ) from None
                if 0 < len(data) <= line_size - (address & offset_mask):
                    if l1_store(address, data) is not None:
                        violations += 1
                else:
                    violations += len(self.store(address, data))
            else:
                raise ValueError(
                    f"unknown trace op kind {kind!r} at index {index}"
                )
        return violations

    def replay_columns(
        self, kinds, addresses, args, cform_offsets=(62, 63)
    ) -> int:
        """Replay one decoded record batch (parallel columns) in order.

        The columnar twin of the trace replayer's per-record hierarchy
        loop: ``kinds``/``addresses``/``args`` are equal-length arrays
        in stream order using the trace event codes (see
        :mod:`repro.memory.kernel`).  LOAD/STORE move data through the
        stack exactly as the equivalent :meth:`replay_trace` ops would
        (a store writes ``arg`` repeats of its address's low byte);
        CFORM records caliform ``arg`` consecutive lines, setting the
        still-clear ``cform_offsets`` bytes of each; every other kind is
        inert here — the replayer accounts for them.  Returns the number
        of security-byte violations, counted as :meth:`replay_trace`
        counts them, and prices every touch through the usual level
        statistics (:meth:`total_cycles` covers the batch with no extra
        work).
        """
        from repro.core.cform import CformRequest
        from repro.memory.kernel import KIND_CFORM, KIND_LOAD, KIND_STORE

        l1_load = self.l1.load
        l1_store = self.l1.store
        l1_cform = self.l1.cform
        secmask_of = self.secmask_of
        line_size = bv.LINE_SIZE
        offset_mask = line_size - 1
        violations = 0
        for kind, address, arg in zip(
            kinds.tolist(), addresses.tolist(), args.tolist()
        ):
            if kind == KIND_LOAD:
                if 0 < arg and (address & offset_mask) + arg <= line_size:
                    if l1_load(address, arg)[1] is not None:
                        violations += 1
                else:
                    violations += len(self.load(address, arg)[1])
            elif kind == KIND_STORE:
                data = bytes([address & 0xFF]) * arg
                if 0 < arg <= line_size - (address & offset_mask):
                    if l1_store(address, data) is not None:
                        violations += 1
                else:
                    violations += len(self.store(address, data))
            elif kind == KIND_CFORM:
                for line_index in range(arg):
                    line_address = (address + line_index * 64) & ~63
                    # Object churn re-califorms reused lines; CFORM-set
                    # on an already-set byte is an architectural usage
                    # error, so only the still-clear offsets are set.
                    current = secmask_of(line_address)
                    wanted = [
                        offset
                        for offset in cform_offsets
                        if not (current >> offset) & 1
                    ]
                    if wanted:
                        l1_cform(CformRequest.set_bytes(line_address, wanted))
        return violations

    def load_or_raise(self, address: int, size: int) -> bytes:
        value, records = self.load(address, size)
        if records:
            raise SecurityByteAccess(records[0])
        return value

    def store_or_raise(self, address: int, data: bytes) -> None:
        records = self.store(address, data)
        if records:
            raise SecurityByteAccess(records[0])

    def cform(self, request: CformRequest) -> None:
        """Execute a (temporal) ``CFORM``: write-allocate into L1, edit."""
        self.l1.cform(request)

    def cform_non_temporal(self, request: CformRequest) -> None:
        """The streaming-store flavour sketched in Section 6.1/footnote 3.

        Applies the metadata edit at the L2 boundary without polluting the
        L1 — used when califorming deallocated regions the program will not
        touch again.
        """
        from repro.core.cform import apply_cform
        from repro.core.sentinel import decode, encode

        if self.l1.contains(request.line_address):
            # Line already resident: fall back to the normal path to keep
            # the L1 copy coherent.
            self.l1.cform(request)
            return
        lower = self.l2.read_line(request.line_address)
        line = decode(lower)
        apply_cform(line, request)
        self.l2.write_line(request.line_address, encode(line))

    # -- bookkeeping ---------------------------------------------------------

    def flush_all(self) -> None:
        """Drain every level down to DRAM (testing/experiment helper)."""
        self.l1.flush()
        self.l2.flush()
        self.l3.flush()

    def secmask_of(self, address: int) -> int:
        """Current security mask of the line holding ``address``.

        Reads through the hierarchy without disturbing simulation results
        more than a normal fill would; used by allocator assertions and
        tests.
        """
        resident = self.l1.peek_secmask(address)
        if resident is not None:
            return resident
        from repro.core.sentinel import decode as _decode

        base = address & ~(bv.LINE_SIZE - 1)
        return _decode(self.l2.read_line(base)).secmask

    def total_cycles(self) -> int:
        """AMAT-style cycle total for all accesses so far."""
        l1, l2, l3 = self.l1.stats, self.l2.stats, self.l3.stats
        return amat_cycles(
            self.config, l1.accesses, l1.misses, l2.misses, l3.misses
        )

    def reset_stats(self) -> None:
        self.l1.stats.reset()
        self.l2.stats.reset()
        self.l3.stats.reset()
        self.dram.stats.reset()


def _split_by_line(address: int, size: int) -> list[tuple[int, int]]:
    """Split a byte range into per-line (address, size) pieces."""
    if size < 0:
        raise ValueError("size must be non-negative")
    pieces: list[tuple[int, int]] = []
    remaining = size
    cursor = address
    while remaining > 0:
        line_end = (cursor & ~(bv.LINE_SIZE - 1)) + bv.LINE_SIZE
        piece = min(remaining, line_end - cursor)
        pieces.append((cursor, piece))
        cursor += piece
        remaining -= piece
    return pieces
