"""Legacy setup shim.

The offline evaluation environment has no `wheel` package, so PEP 517
editable installs fail; this shim lets `pip install -e .` fall back to
`setup.py develop`.  All project metadata and the src/ package layout
live in pyproject.toml; keep this file argument-free.
"""

from setuptools import setup

setup()
