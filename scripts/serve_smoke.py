"""CI smoke for ``repro.serve``: drive a live service end to end.

Run against an already-listening server (``make serve-smoke`` starts
one)::

    python scripts/serve_smoke.py <base-url> <corpus-root>

Asserts the service's whole contract: liveness, fetch-by-digest byte
identity against the served store, replay identity through the
RemoteStore, results ETag revalidation (the second GET must be a 304),
a digest-verified pack round-trip, a streamed job reaching ``done`` as
a pure corpus hit, and a Prometheus-parseable ``/metrics`` body.
Exits non-zero on the first violated property.
"""

import sys
import tempfile

from repro.corpus.packs import unpack, verify_pack
from repro.corpus.store import CorpusStore
from repro.serve.client import RemoteStore
from repro.traces.registry import TraceScenarioSpec
from repro.traces.replayer import replay_timing


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    base_url, corpus_root = argv
    scratch = tempfile.mkdtemp(prefix="serve-smoke-")
    remote = RemoteStore(base_url, cache_dir=f"{scratch}/cache")
    local = CorpusStore(corpus_root)

    document = remote.healthz()
    assert document["status"] == "ok", document
    print(f"healthz: ok (version {document['version']})")

    entries = local.manifest().entries
    assert entries, f"served corpus at {corpus_root} is empty"
    for entry in entries.values():
        outcome = remote.fetch(entry.digest)
        with open(local.object_path(entry.digest), "rb") as handle:
            local_bytes = handle.read()
        with open(outcome.path, "rb") as handle:
            assert handle.read() == local_bytes, entry.digest
        remote_run = replay_timing(outcome.path)
        local_run = replay_timing(local.object_path(entry.digest))
        assert remote_run.events == local_run.events, entry.scenario
        assert remote_run.instructions == local_run.instructions
    print(f"objects: {len(entries)} fetched, byte- and replay-identical")

    status, etag, body = remote.result_document("smoke")
    assert status == 200 and body, (status, len(body))
    status, _etag, body = remote.result_document("smoke", etag=etag)
    assert (status, body) == (304, b""), status
    print("results: 200 then 304 (content-digest revalidation)")

    packs = remote._get_json("/packs")["packs"]
    assert packs, "no packs served"
    fetched = remote.fetch_pack(packs[0]["id"], f"{scratch}/smoke.pack")
    problems = verify_pack(fetched)
    assert not problems, problems
    other = CorpusStore(f"{scratch}/unpacked")
    installed, _skipped = unpack(fetched, other)
    assert installed, "pack unpacked nothing"
    assert other.manifest().entries.keys() <= entries.keys()
    print(f"packs: {packs[0]['id'][:12]}… round-tripped, {len(installed)} "
          f"object(s) digest-verified")

    entry = next(iter(entries.values()))
    spec = TraceScenarioSpec.from_dict(entry.spec)
    result = remote.record_remote(spec)
    assert result["built"] is False, "smoke job should be a pure corpus hit"
    print(
        f"jobs: streamed record of {entry.scenario!r} done (corpus hit)"
    )

    text = remote.metrics_text()
    assert "# TYPE" in text and "serve_requests_total" in text, text[:200]
    for line in text.splitlines():
        if line and not line.startswith("#"):
            float(line.rsplit(" ", 1)[1])
    print("metrics: Prometheus exposition parses")
    print("serve-smoke: all service properties hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
